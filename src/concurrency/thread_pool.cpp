#include "apar/concurrency/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "apar/concurrency/steal_deque.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"

namespace apar::concurrency {

namespace {

/// Identifies the pool worker running on this thread (if any), so post()
/// from inside a task can target the worker's own deque lock-free.
struct CurrentWorker {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local CurrentWorker tls_worker;

constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
/// Injection-queue tasks moved into the claiming worker's deque per grab,
/// so one locked visit feeds several lock-free pops (and gives thieves
/// something to steal).
constexpr std::size_t kInjectChunk = 16;
constexpr std::size_t kNodeCacheCap = 64;
constexpr std::size_t kDequeCapacity = 1024;

/// xorshift64* per-thread RNG for victim selection; no locking, no
/// std::random_device syscall on the steal path.
std::uint64_t next_rand() {
  static thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      static_cast<std::uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

}  // namespace

struct ThreadPool::TaskNode {
  Task task;
  std::chrono::steady_clock::time_point enqueued{};
  /// Submitter's trace context, captured at make_node when tracing is
  /// enabled and restored around task() — causality survives steals.
  obs::TraceContext ctx;
  TaskNode* next = nullptr;  ///< node-cache freelist link
};

struct ThreadPool::WorkerSlot {
  StealDeque<TaskNode> deque{kDequeCapacity};
  /// Set by resize() to shrink: the owning worker observes it at a task
  /// boundary, drains its deque into the injection queue and exits.
  std::atomic<bool> retire{false};
};

struct ThreadPool::NodeCache {
  TaskNode* head = nullptr;
  std::size_t count = 0;

  ~NodeCache() {
    while (head) {
      TaskNode* node = head;
      head = node->next;
      delete node;
    }
  }
};

ThreadPool::NodeCache& ThreadPool::local_node_cache() {
  static thread_local NodeCache cache;
  return cache;
}

ThreadPool::TaskNode* ThreadPool::make_node(Task task) {
  NodeCache& cache = local_node_cache();
  if (!cache.head) {
    // Reclaim nodes freed on other threads (typically the workers) in one
    // ABA-safe swap; without this, a pure producer thread would pay a
    // malloc per post because its own cache never refills. The whole list
    // is adopted — possibly past the cap; destroy_node stops adding beyond
    // the cap and the cache frees everything at thread exit.
    TaskNode* list = free_nodes_.exchange(nullptr, std::memory_order_acquire);
    while (list) {
      TaskNode* reclaimed = list;
      list = reclaimed->next;
      reclaimed->next = cache.head;
      cache.head = reclaimed;
      ++cache.count;
    }
  }
  TaskNode* node;
  if (cache.head) {
    node = cache.head;
    cache.head = node->next;
    --cache.count;
    node->next = nullptr;
  } else {
    node = new TaskNode();
  }
  node->task = std::move(task);
  node->ctx =
      obs::tracing_enabled() ? obs::current_context() : obs::TraceContext{};
  if (wait_us_ || node->ctx.valid())
    node->enqueued = std::chrono::steady_clock::now();
  return node;
}

void ThreadPool::destroy_node(TaskNode* node) noexcept {
  node->task.reset();
  NodeCache& cache = local_node_cache();
  if (cache.count < kNodeCacheCap) {
    node->next = cache.head;
    cache.head = node;
    ++cache.count;
  } else {
    // Local cache full: hand the node to the pool's shared free-stack so
    // producer threads (which allocate but never free) can recycle it.
    TaskNode* head = free_nodes_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!free_nodes_.compare_exchange_weak(head, node,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_threads) {
  if (threads == 0) threads = 1;
  if (max_threads == 0) max_threads = std::max<std::size_t>(threads * 2, 8);
  max_threads = std::max(max_threads, threads);
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    queue_depth_ = registry.gauge("threadpool.queue_depth");
    workers_gauge_ = registry.gauge("threadpool.workers");
    wait_us_ = registry.histogram("threadpool.wait_us");
    queue_wait_us_ = registry.histogram("threadpool.queue_wait");
    run_us_ = registry.histogram("threadpool.run_us");
    tasks_counter_ = registry.counter("threadpool.tasks");
    busy_us_counter_ = registry.counter("threadpool.busy_us");
    steals_counter_ = registry.counter("threadpool.steals");
    overflow_counter_ = registry.counter("threadpool.overflow");
    workers_gauge_->add(static_cast<std::int64_t>(threads));
  }
  // Every slot the pool can ever use is allocated NOW, so resize() never
  // reallocates slots_ — thieves iterate it without synchronising against
  // growth. Slots beyond the initial target sit idle (an empty deque is a
  // two-load scan for a thief) until a grow starts a worker on them.
  slots_.reserve(max_threads);
  for (std::size_t i = 0; i < max_threads; ++i)
    slots_.push_back(std::make_unique<WorkerSlot>());
  workers_.resize(max_threads);
  target_size_.store(threads, std::memory_order_release);
  for (std::size_t i = 0; i < threads; ++i)
    workers_[i] = std::thread([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    // Fence against the sleep predicate: a worker past its predicate check
    // either holds the mutex (we wait here) or is already blocked (the
    // notify reaches it).
    std::lock_guard lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  {
    // Serialise against an in-flight resize(): it checks stopping_ under
    // this mutex before spawning, so after we acquire it no new worker can
    // appear behind our joins.
    std::lock_guard resize_lock(resize_mutex_);
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  }
  TaskNode* list = free_nodes_.exchange(nullptr, std::memory_order_acquire);
  while (list) {
    TaskNode* node = list;
    list = node->next;
    delete node;
  }
  if (workers_gauge_)
    workers_gauge_->add(
        -static_cast<std::int64_t>(target_size_.load(std::memory_order_acquire)));
}

std::size_t ThreadPool::resize(std::size_t n) {
  if (n == 0) n = 1;
  n = std::min(n, slots_.size());
  if (tls_worker.pool == this)
    throw std::logic_error(
        "ThreadPool::resize must not be called from a task on this pool "
        "(a grow may need to join the calling worker's own slot)");
  std::lock_guard resize_lock(resize_mutex_);
  if (stopping_.load(std::memory_order_seq_cst))
    return target_size_.load(std::memory_order_acquire);
  const std::size_t old = target_size_.load(std::memory_order_acquire);
  if (n == old) return old;
  if (n > old) {
    for (std::size_t i = old; i < n; ++i) {
      // A worker retired by an earlier shrink may still be unwinding on
      // this slot; join it before reusing the slot. Its deque was drained
      // on retirement, so the fresh worker starts on an empty deque.
      if (workers_[i].joinable()) workers_[i].join();
      slots_[i]->retire.store(false, std::memory_order_release);
      workers_[i] = std::thread([this, i] { worker_loop(i); });
    }
    target_size_.store(n, std::memory_order_seq_cst);
  } else {
    target_size_.store(n, std::memory_order_seq_cst);
    for (std::size_t i = n; i < old; ++i)
      slots_[i]->retire.store(true, std::memory_order_seq_cst);
    // Same lock-then-notify fence as the destructor: a flagged worker past
    // its sleep-predicate check either holds the mutex (we wait) or is
    // already blocked (the notify reaches it). Either way it observes the
    // retire flag and exits instead of sleeping through the shrink.
    {
      std::lock_guard lock(sleep_mutex_);
    }
    sleep_cv_.notify_all();
  }
  resizes_.fetch_add(1, std::memory_order_relaxed);
  if (workers_gauge_)
    workers_gauge_->add(static_cast<std::int64_t>(n) -
                        static_cast<std::int64_t>(old));
  return n;
}

void ThreadPool::post_node(TaskNode* node) {
  // Accept/reject protocol (both sides seq_cst): pending++ happens BEFORE
  // the stopping check, and the destructor stores stopping BEFORE workers
  // re-check pending on their way out. In the seq_cst total order either
  // this post sees stopping (rejects, undoes the increment) or its
  // increment precedes the store, in which case every exiting worker still
  // sees pending > 0 and keeps draining. Tasks are never lost at shutdown.
  pending_count_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    pending_count_.fetch_sub(1, std::memory_order_seq_cst);
    destroy_node(node);
    {
      std::lock_guard lock(sleep_mutex_);
    }
    idle_cv_.notify_all();
    throw std::runtime_error("ThreadPool is shutting down");
  }
  if (queue_depth_) queue_depth_->add(1);
  enqueue_node(node);
  wake_one();
}

void ThreadPool::enqueue_node(TaskNode* node) {
  if (tls_worker.pool == this) {
    if (slots_[tls_worker.index]->deque.push(node)) return;
    overflows_.fetch_add(1, std::memory_order_relaxed);
    if (overflow_counter_) overflow_counter_->add(1);
  }
  common::MutexLock lock(inject_mutex_);
  inject_.push_back(node);
}

void ThreadPool::bulk_post(std::span<Task> tasks) {
  if (tasks.empty()) return;
  const auto n = static_cast<std::int64_t>(tasks.size());
  pending_count_.fetch_add(n, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    // All-or-nothing: no task has been moved from yet, so the caller can
    // still run the span inline.
    pending_count_.fetch_sub(n, std::memory_order_seq_cst);
    {
      std::lock_guard lock(sleep_mutex_);
    }
    idle_cv_.notify_all();
    throw std::runtime_error("ThreadPool is shutting down");
  }
  if (queue_depth_) queue_depth_->add(n);
  if (tls_worker.pool == this) {
    // Seed our own deque (lock-free); spill the rest under one lock.
    auto& deque = slots_[tls_worker.index]->deque;
    std::vector<TaskNode*> spill;
    for (auto& task : tasks) {
      TaskNode* node = make_node(std::move(task));
      if (!deque.push(node)) {
        overflows_.fetch_add(1, std::memory_order_relaxed);
        if (overflow_counter_) overflow_counter_->add(1);
        spill.push_back(node);
      }
    }
    if (!spill.empty()) {
      common::MutexLock lock(inject_mutex_);
      inject_.insert(inject_.end(), spill.begin(), spill.end());
    }
  } else {
    std::vector<TaskNode*> nodes;
    nodes.reserve(tasks.size());
    for (auto& task : tasks) nodes.push_back(make_node(std::move(task)));
    common::MutexLock lock(inject_mutex_);
    inject_.insert(inject_.end(), nodes.begin(), nodes.end());
  }
  wake_all();
}

ThreadPool::TaskNode* ThreadPool::take_injected(std::size_t index) {
  common::MutexLock lock(inject_mutex_);
  if (inject_.empty()) return nullptr;
  TaskNode* first = inject_.front();
  inject_.pop_front();
  // Re-seed our deque so the next grabs are lock-free and thieves can
  // spread the backlog.
  auto& deque = slots_[index]->deque;
  std::size_t moved = 0;
  while (moved < kInjectChunk && !inject_.empty()) {
    if (!deque.push(inject_.front())) break;
    inject_.pop_front();
    ++moved;
  }
  return first;
}

ThreadPool::TaskNode* ThreadPool::take_injected_external() {
  common::MutexLock lock(inject_mutex_);
  if (inject_.empty()) return nullptr;
  TaskNode* first = inject_.front();
  inject_.pop_front();
  return first;
}

ThreadPool::TaskNode* ThreadPool::steal_task(std::size_t self_index) {
  const std::size_t n = slots_.size();
  for (int round = 0; round < 2; ++round) {
    const std::size_t start = static_cast<std::size_t>(next_rand()) % n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (victim == self_index) continue;
      if (TaskNode* node = slots_[victim]->deque.steal()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (steals_counter_) steals_counter_->add(1);
        return node;
      }
    }
  }
  return nullptr;
}

ThreadPool::TaskNode* ThreadPool::find_work(std::size_t index) {
  if (TaskNode* node = slots_[index]->deque.pop()) return node;
  if (TaskNode* node = take_injected(index)) return node;
  return steal_task(index);
}

void ThreadPool::run_node(TaskNode* node) {
  // Claim order matters for drain(): active++ BEFORE pending--, so there
  // is no instant where a claimed-but-running task is invisible to the
  // idle predicate (pending == 0 && active == 0).
  active_.fetch_add(1, std::memory_order_seq_cst);
  pending_count_.fetch_sub(1, std::memory_order_seq_cst);
  if (queue_depth_) queue_depth_->add(-1);
  std::chrono::steady_clock::time_point started{};
  if (wait_us_ || node->ctx.valid())
    started = std::chrono::steady_clock::now();
  if (wait_us_) {
    const double us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          started - node->enqueued)
                          .count() /
                      1000.0;
    wait_us_->record(us);
    queue_wait_us_->record(us);
  }
  if (node->ctx.valid() && obs::tracing_enabled()) {
    // The submit→start gap as an explicit child span of the submitter —
    // queue pressure becomes visible in the timeline, not just as a
    // histogram. Both boundary events share one fresh context so they
    // pair exactly even among same-named neighbours.
    const obs::TraceContext wait_ctx = obs::TraceContext::child_of(node->ctx);
    auto& tracer = *obs::Tracer::global();
    tracer.record({node->enqueued, std::this_thread::get_id(),
                   "threadpool.queue_wait", nullptr,
                   obs::TraceEvent::Phase::kEnter, wait_ctx});
    tracer.record({started, std::this_thread::get_id(),
                   "threadpool.queue_wait", nullptr,
                   obs::TraceEvent::Phase::kExit, wait_ctx});
  }
  // A fire-and-forget task that throws must not take the process down
  // (an escaped exception on a worker thread is std::terminate). This
  // matters during shutdown: a task that post()s while the pool is
  // stopping gets a runtime_error, and if it lets that propagate the
  // whole run would die instead of finishing the drain.
  try {
    if (node->ctx.valid()) {
      // Resume the submitter's context for the task body: spans the task
      // opens parent to the submitting span, across steals.
      obs::ContextScope restore(node->ctx);
      node->task();
    } else {
      node->task();
    }
  } catch (...) {
    task_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  if (run_us_) {
    const double us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count() /
                      1000.0;
    run_us_->record(us);
    tasks_counter_->add(1);
    busy_us_counter_->add(static_cast<std::uint64_t>(us));
  }
  destroy_node(node);
  if (active_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
      pending_count_.load(std::memory_order_seq_cst) == 0) {
    std::lock_guard lock(sleep_mutex_);
    idle_cv_.notify_all();
  }
}

bool ThreadPool::try_execute_one() {
  TaskNode* node = nullptr;
  if (tls_worker.pool == this) {
    node = find_work(tls_worker.index);
  } else {
    node = take_injected_external();
    if (!node) node = steal_task(kNoWorker);
  }
  if (!node) return false;
  run_node(node);
  return true;
}

std::size_t ThreadPool::pending() const {
  const auto p = pending_count_.load(std::memory_order_seq_cst);
  return p > 0 ? static_cast<std::size_t>(p) : 0;
}

void ThreadPool::drain() {
  std::unique_lock lock(sleep_mutex_);
  idle_cv_.wait(lock, [&] {
    return pending_count_.load(std::memory_order_seq_cst) == 0 &&
           active_.load(std::memory_order_seq_cst) == 0;
  });
}

void ThreadPool::wake_one() {
  // Dekker pairing with the sleep path: enqueue did pending++ (seq_cst)
  // before this sleepers_ read; a worker does sleepers++ (seq_cst) before
  // re-reading pending under the mutex. At least one side sees the other,
  // so a task is never published to a fully sleeping pool without a notify.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

void ThreadPool::wake_all() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
}

void ThreadPool::retire_worker(std::size_t index) {
  // Drain our OWN deque (owner pops are safe against concurrent thieves)
  // back into the injection queue. The pending accounting is untouched:
  // the tasks were accepted and stay accepted, they only change queues,
  // so exactly-once execution holds across the shrink.
  auto& deque = slots_[index]->deque;
  std::vector<TaskNode*> drained;
  while (TaskNode* node = deque.pop()) drained.push_back(node);
  if (!drained.empty()) {
    {
      common::MutexLock lock(inject_mutex_);
      inject_.insert(inject_.end(), drained.begin(), drained.end());
    }
    wake_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker = CurrentWorker{this, index};
  WorkerSlot& slot = *slots_[index];
  while (true) {
    // Task boundary: honour a shrink before claiming more work.
    if (slot.retire.load(std::memory_order_seq_cst)) {
      retire_worker(index);
      break;
    }
    if (TaskNode* node = find_work(index)) {
      run_node(node);
      continue;
    }
    // Nothing claimable right now. If tasks are accounted somewhere
    // (being enqueued, or sitting in a deque we raced on), spin-yield;
    // sleeping here could strand a task behind the wake protocol.
    if (pending_count_.load(std::memory_order_seq_cst) > 0) {
      std::this_thread::yield();
      continue;
    }
    if (stopping_.load(std::memory_order_seq_cst)) {
      // Exit only when stopping AND nothing pending anywhere — the
      // destructor drains queued work (see post_node protocol).
      if (pending_count_.load(std::memory_order_seq_cst) == 0) break;
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_seq_cst) ||
             slot.retire.load(std::memory_order_seq_cst) ||
             pending_count_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  tls_worker = CurrentWorker{};
}

}  // namespace apar::concurrency
