#pragma once

#include <concepts>
#include <vector>

namespace apar::strategies {

/// The core-functionality shape the pipeline/farm partition protocols weave
/// against — the design rule of paper §4: "classes from core functionality
/// [must] provide method(s) to process a subset of the data".
///
/// For element type E, a stage class provides:
///   - `filter(pack)`  — apply THIS stage's share of the work to a pack,
///                       mutating it in place (partial work);
///   - `process(pack)` — apply the FULL work to a pack and retain results
///                       internally (what the sequential core calls);
///   - `collect(pack)` — retain an already fully-processed pack;
///   - `take_results()`— move the retained results out.
///
/// A sequential program is `stage.process(all_data)`. The partition aspects
/// re-express that same call as a pipeline of filter() hops or a farm of
/// process() calls without the class knowing.
template <class T, class E>
concept Stage = requires(T t, std::vector<E>& pack,
                         const std::vector<E>& cpack) {
  { t.filter(pack) } -> std::same_as<void>;
  { t.process(pack) } -> std::same_as<void>;
  { t.collect(cpack) } -> std::same_as<void>;
  { t.take_results() } -> std::same_as<std::vector<E>>;
};

}  // namespace apar::strategies
