#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/common/stress.hpp"

namespace apar::strategies {

/// The seeded decision engine behind ChaosAspect: a shared schedule of
/// yields and sleeps. Each perturbation consumes one decision index; the
/// decision for index i is a pure function of (seed, i) via
/// common::rng_at, so the perturbation schedule is byte-identical across
/// runs with the same seed regardless of how threads interleave. Every
/// decision is logged and can be rendered with dump() for golden
/// comparisons and seed-reproduction checks.
class ChaosSchedule {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double yield_rate = 0.2;       ///< probability of a scheduler yield
    double sleep_rate = 0.1;       ///< probability of a short sleep
    std::uint64_t max_sleep_us = 100;  ///< sleeps are uniform in [1, max]
  };

  struct Decision {
    enum class Kind { kPass, kYield, kSleep };
    std::uint64_t index = 0;
    Kind kind = Kind::kPass;
    std::uint64_t sleep_us = 0;
  };

  explicit ChaosSchedule(Options options) : options_(options) {}

  /// Decide (and log) the next perturbation without applying it.
  Decision next() {
    const std::uint64_t index =
        next_index_.fetch_add(1, std::memory_order_relaxed);
    common::Rng rng = common::rng_at(options_.seed, index);
    const double u_yield = rng.uniform01();
    const double u_sleep = rng.uniform01();
    const std::uint64_t sleep_draw =
        options_.max_sleep_us > 0 ? rng.uniform(1, options_.max_sleep_us) : 0;

    Decision d;
    d.index = index;
    if (u_sleep < options_.sleep_rate && sleep_draw > 0) {
      d.kind = Decision::Kind::kSleep;
      d.sleep_us = sleep_draw;
    } else if (u_yield < options_.yield_rate) {
      d.kind = Decision::Kind::kYield;
    }
    if (d.kind != Decision::Kind::kPass)
      perturbations_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(log_mutex_);
      log_.push_back(d);
    }
    return d;
  }

  /// Execute a decision on the calling thread.
  static void apply(const Decision& d) {
    switch (d.kind) {
      case Decision::Kind::kPass:
        break;
      case Decision::Kind::kYield:
        std::this_thread::yield();
        break;
      case Decision::Kind::kSleep:
        std::this_thread::sleep_for(std::chrono::microseconds(d.sleep_us));
        break;
    }
  }

  /// Decide and apply in one step (what the aspect's advice calls).
  void perturb() { apply(next()); }

  [[nodiscard]] std::uint64_t decisions() const {
    return next_index_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t perturbations() const {
    return perturbations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Canonical text rendering ordered by decision index: "op N:
  /// pass|yield|sleep=Kus" — byte-identical across runs with the same
  /// seed and decision count.
  [[nodiscard]] std::string dump() const {
    std::vector<Decision> decisions;
    {
      std::lock_guard lock(log_mutex_);
      decisions = log_;
    }
    std::sort(decisions.begin(), decisions.end(),
              [](const Decision& a, const Decision& b) {
                return a.index < b.index;
              });
    std::ostringstream out;
    for (const Decision& d : decisions) {
      out << "op " << d.index << ": ";
      switch (d.kind) {
        case Decision::Kind::kPass: out << "pass"; break;
        case Decision::Kind::kYield: out << "yield"; break;
        case Decision::Kind::kSleep: out << "sleep=" << d.sleep_us << "us";
          break;
      }
      out << "\n";
    }
    return out.str();
  }

 private:
  Options options_;
  std::atomic<std::uint64_t> next_index_{0};
  std::atomic<std::uint64_t> perturbations_{0};
  mutable std::mutex log_mutex_;
  std::vector<Decision> log_;
};

/// Schedule-perturbation aspect for class T: before each selected join
/// point proceeds, a seeded yield or sleep is injected — shaking thread
/// interleavings to surface races that the happy-path schedule hides.
///
/// This is the paper's pluggability claim extended to a *testing* concern:
/// chaos weaves in with ordinary advice, composes with the partition /
/// concurrency / distribution aspects without either knowing, and unplugs
/// (detach or set_enabled(false)) leaving zero probes behind. Several
/// ChaosAspects over different classes may share one ChaosSchedule, giving
/// a single reproducible perturbation stream for the whole run.
template <class T>
class ChaosAspect : public aop::Aspect {
 public:
  ChaosAspect(std::string name, std::shared_ptr<ChaosSchedule> schedule,
              int order = aop::order::kDefault)
      : Aspect(std::move(name)),
        schedule_(std::move(schedule)),
        order_(order) {}

  explicit ChaosAspect(std::shared_ptr<ChaosSchedule> schedule)
      : ChaosAspect("Chaos", std::move(schedule)) {}

  /// Perturb the schedule before calls to method M proceed. The default
  /// order (350) sits between partition forwarding and the concurrency
  /// monitor, i.e. on the worker thread for asynchronous calls — where a
  /// perturbation actually reshuffles the interleaving.
  template <auto M>
  ChaosAspect& perturb_method() {
    this->template before_method<M>(
        order_, aop::Scope::any(),
        [schedule = schedule_](auto&) { schedule->perturb(); });
    return *this;
  }

  /// Perturb the schedule before creations T(CtorArgs...) proceed.
  template <class... CtorArgs>
  ChaosAspect& perturb_new() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        order_, aop::Scope::any(),
        [schedule = schedule_](
            aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          schedule->perturb();
          return inv.proceed();
        });
    return *this;
  }

  [[nodiscard]] const std::shared_ptr<ChaosSchedule>& schedule() const {
    return schedule_;
  }

 private:
  std::shared_ptr<ChaosSchedule> schedule_;
  int order_;
};

}  // namespace apar::strategies
