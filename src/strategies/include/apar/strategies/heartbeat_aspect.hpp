#pragma once

#include <concepts>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/concurrency/future.hpp"
#include "apar/strategies/partition_common.hpp"

namespace apar::strategies {

/// The core-functionality shape the heartbeat protocol weaves against: a
/// "band" owning a horizontal slab of an iterative grid computation.
/// Sequentially, one band covers the whole domain and `run(iters)` just
/// steps it; the heartbeat aspect re-expresses the same call as
/// compute/exchange rounds over several bands.
template <class T>
concept HeartbeatBand = requires(T t, const std::vector<double>& row, int n) {
  { t.step() } -> std::same_as<void>;
  { t.run(n) } -> std::same_as<void>;
  { t.top_row() } -> std::same_as<std::vector<double>>;
  { t.bottom_row() } -> std::same_as<std::vector<double>>;
  { t.set_halo_above(row) } -> std::same_as<void>;
  { t.set_halo_below(row) } -> std::same_as<void>;
  { t.residual() } -> std::same_as<double>;
};

/// Reusable heartbeat partition protocol — the third strategy category the
/// paper reports implementing ("pipeline, farm with separable dependencies
/// and heartbeat", §7). Each iteration: exchange boundary rows between
/// adjacent bands, then step every band; the exchange/step cycle is the
/// heartbeat.
///
/// Like the dynamic farm, partition and concurrency are merged here (the
/// barrier between exchange and step phases is inherent to the protocol);
/// the distribution aspect still composes freely because every inter-band
/// interaction goes through context calls on Ref<T>s.
template <class T, class... CtorArgs>
  requires HeartbeatBand<T>
class HeartbeatAspect : public aop::Aspect {
 public:
  struct Options {
    std::size_t bands = 2;
    /// Derives each band's ctor args from the original creation (e.g.
    /// sub-ranges of grid rows). Required.
    CtorPartitioner<CtorArgs...> ctor_args;
    /// Step all bands concurrently (futures + implicit barrier). With
    /// false the heartbeat still partitions but steps sequentially —
    /// useful for debugging, like unplugging the concurrency aspect.
    bool parallel_step = true;
  };

  HeartbeatAspect(std::string name, Options options)
      : Aspect(std::move(name)), options_(std::move(options)) {
    register_duplication();
    register_run();
  }

  explicit HeartbeatAspect(Options options)
      : HeartbeatAspect("Heartbeat", std::move(options)) {}

  [[nodiscard]] const std::vector<aop::Ref<T>>& bands() const {
    return bands_;
  }

  /// Global residual: sum over bands.
  double residual(aop::Context& ctx) {
    double sum = 0.0;
    for (auto& band : bands_) sum += ctx.template call<&T::residual>(band);
    return sum;
  }

  /// Heartbeats completed (iterations driven by the woven run()).
  [[nodiscard]] std::size_t beats() const { return beats_; }

 private:
  void register_duplication() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          bands_.clear();
          const std::size_t k = options_.bands ? options_.bands : 1;
          for (std::size_t i = 0; i < k; ++i) {
            auto args = options_.ctor_args(i, k, inv.args());
            bands_.push_back(std::apply(
                [&](auto&&... a) {
                  return inv.proceed_with(std::forward<decltype(a)>(a)...);
                },
                std::move(args)));
          }
          return bands_.front();
        });
  }

  void register_run() {
    this->template around_method<&T::run>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](auto& inv) {
          const auto [iterations] = inv.args();
          auto& ctx = inv.context();
          for (int iter = 0; iter < iterations; ++iter) {
            exchange_halos(ctx);
            step_all(ctx);
            ++beats_;
          }
        });
  }

  void exchange_halos(aop::Context& ctx) {
    // Band i's bottom row becomes band i+1's halo-above and vice versa.
    for (std::size_t i = 0; i + 1 < bands_.size(); ++i) {
      auto boundary_down = ctx.template call<&T::bottom_row>(bands_[i]);
      auto boundary_up = ctx.template call<&T::top_row>(bands_[i + 1]);
      ctx.template call<&T::set_halo_above>(bands_[i + 1], boundary_down);
      ctx.template call<&T::set_halo_below>(bands_[i], boundary_up);
    }
  }

  void step_all(aop::Context& ctx) {
    if (!options_.parallel_step || bands_.size() == 1) {
      for (auto& band : bands_) ctx.template call<&T::step>(band);
      return;
    }
    std::vector<concurrency::Future<void>> steps;
    steps.reserve(bands_.size());
    for (auto& band : bands_)
      steps.push_back(ctx.template call_future<&T::step>(band));
    concurrency::wait_all(steps);  // the heartbeat barrier
  }

  Options options_;
  std::vector<aop::Ref<T>> bands_;
  std::size_t beats_ = 0;
};

}  // namespace apar::strategies
