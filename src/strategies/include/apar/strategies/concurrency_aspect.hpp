#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "apar/aop/aop.hpp"
#include "apar/concurrency/sync_registry.hpp"
#include "apar/concurrency/thread_pool.hpp"

namespace apar::strategies {

/// Runtime-reconfiguration interface for concurrency aspects; used by the
/// ThreadPoolOptimisation aspect to swap thread-per-call execution for a
/// pooled executor without touching the concurrency aspect's identity.
class AsyncControl {
 public:
  virtual ~AsyncControl() = default;
  /// Route asynchronous calls through a pool of `threads` workers.
  virtual void use_pool(std::size_t threads) = 0;
  /// Restore the paper's literal thread-per-call model.
  virtual void use_thread_per_call() = 0;
  [[nodiscard]] virtual bool pooled() const = 0;
};

/// The paper's Concurrency aspect (§4.2, Figure 12), generalised and
/// reusable: makes selected void methods asynchronous (each call runs the
/// rest of its advice chain on a new tracked thread, with arguments copied
/// by value) and guards selected methods with a per-object monitor, since
/// core classes are not thread safe.
///
/// Both halves can be toggled independently: unplugging the whole aspect
/// (or set_enabled(false)) restores valid sequential execution — the
/// paper's debugging story.
template <class T>
class ConcurrencyAspect : public aop::Aspect, public AsyncControl {
 public:
  explicit ConcurrencyAspect(std::string name = "Concurrency")
      : Aspect(std::move(name)) {}

  /// Make void method M asynchronous and monitor-guarded (the usual pair).
  template <auto M>
  ConcurrencyAspect& async_method() {
    register_async<M>();
    register_guard<M>();
    return *this;
  }

  /// Monitor-guard method M without making it asynchronous (for result
  /// collection methods called from many forwarding threads).
  template <auto M>
  ConcurrencyAspect& guarded_method() {
    register_guard<M>();
    return *this;
  }

  // --- AsyncControl -------------------------------------------------------

  void use_pool(std::size_t threads) override {
    // Swap the pool handle atomically: dispatches in flight hold their own
    // shared_ptr, so the old pool is destroyed (draining its queue) only
    // when the last dispatch lets go.
    pool_.store(std::make_shared<concurrency::ThreadPool>(threads),
                std::memory_order_release);
    pooled_.store(true, std::memory_order_release);
  }

  void use_thread_per_call() override {
    pooled_.store(false, std::memory_order_release);
    // The pool itself is retired lazily; in-flight pooled tasks finish.
  }

  [[nodiscard]] bool pooled() const override {
    return pooled_.load(std::memory_order_acquire);
  }

  /// Calls spawned since construction (diagnostics / tests).
  [[nodiscard]] std::uint64_t spawned() const {
    return spawned_.load(std::memory_order_relaxed);
  }

  /// The pooled executor currently routing async calls (null when in
  /// thread-per-call mode). Exposed so an AdaptationAspect can wire its
  /// workers knob to pool->resize() — the pool's cooperative-retirement
  /// contract keeps accepted dispatches exactly-once across resizes.
  [[nodiscard]] std::shared_ptr<concurrency::ThreadPool> pool() const {
    return pool_.load(std::memory_order_acquire);
  }

 private:
  template <auto M>
  void register_async() {
    this->template around_method<M>(
            aop::order::kConcurrencyAsync, aop::Scope::any(),
            [this](auto& inv) {
              auto continuation = inv.continuation();
              spawned_.fetch_add(1, std::memory_order_relaxed);
              if (pooled()) {
                // Lock-free dispatch: the atomic shared_ptr load pins the
                // pool for the duration of the post, so use_pool()/unplug
                // can swap it concurrently without a mutex on this hot
                // path.
                if (auto pool = pool_.load(std::memory_order_acquire)) {
                  inv.context().tasks().run_on(*pool, std::move(continuation));
                  return;
                }
              }
              // The paper's `new Thread() { run() { proceed(); } }.start()`.
              inv.context().tasks().spawn(std::move(continuation));
            })
        .mark_spawns_concurrency()
        // Both dispatch modes tolerate an online resize of their degree:
        // a pooled task survives ThreadPool::resize exactly-once (deques
        // drain through the injection queue on retirement), and a
        // thread-per-call dispatch owns its thread outright.
        .mark_online_resizable();
  }

  template <auto M>
  void register_guard() {
    this->template around_method<M>(
            aop::order::kConcurrencySync, aop::Scope::any(),
            [this](auto& inv) {
              // `synchronized(target) { proceed(); }` — keyed on the Ref cell
              // so it works identically for local and remote objects.
              auto guard = monitors_.acquire(inv.target().identity());
              return inv.proceed();
            })
        .mark_acquires_monitor();
  }

  concurrency::SyncRegistry monitors_;
  std::atomic<std::shared_ptr<concurrency::ThreadPool>> pool_;
  std::atomic<bool> pooled_{false};
  std::atomic<std::uint64_t> spawned_{0};
};

}  // namespace apar::strategies
