#pragma once

#include <atomic>
#include <concepts>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/concurrency/future.hpp"

namespace apar::strategies {

/// The core-functionality shape the divide-and-conquer protocol weaves
/// against. A solver computes `solve(problem) -> result` sequentially; to
/// support the aspect it also exposes the problem algebra: when a problem
/// is worth splitting, how to split it, and how to merge sub-results (in
/// sub-problem order).
///
/// Problems and results must be serializable values so sub-solvers can be
/// placed on remote nodes by the distribution aspect.
template <class T, class P, class R>
concept DivideConquerSolver = requires(T t, const P& p, const R& a,
                                       const R& b) {
  { t.solve(p) } -> std::same_as<R>;
  { t.should_split(p) } -> std::same_as<bool>;
  { t.split(p) } -> std::same_as<std::vector<P>>;
  { t.merge(a, b) } -> std::same_as<R>;
};

/// Divide-and-conquer partition protocol (paper §4.1: "it is also possible
/// to perform object creations when intercepting method calls (e.g., in
/// divide and conquer algorithms)").
///
/// Around advice on `solve` splits large problems, CREATES a sub-solver
/// per sub-problem through the weaving context — so the creations are
/// join points the distribution aspect can place on nodes — solves the
/// sub-problems through woven future calls (the recursion is simply this
/// advice re-applying on the sub-calls), and merges the results. Problems
/// below the solver's own threshold proceed to the plain sequential solve.
/// The solver's `should_split` bounds the task tree.
template <class T, class P, class R, class... CtorArgs>
  requires DivideConquerSolver<T, P, R>
class DivideAndConquerAspect : public aop::Aspect {
 public:
  explicit DivideAndConquerAspect(std::string name = "DivideAndConquer")
      : Aspect(std::move(name)) {
    register_solve();
  }

  /// Constructor arguments used when creating sub-solvers (defaults to
  /// value-initialised arguments; solvers are usually stateless).
  void set_sub_solver_args(std::decay_t<CtorArgs>... args) {
    ctor_args_ = std::tuple<std::decay_t<CtorArgs>...>(std::move(args)...);
  }

  /// Sub-solvers created so far (across all recursion levels).
  [[nodiscard]] std::uint64_t solvers_created() const {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  void register_solve() {
    this->template around_method<&T::solve>(
        aop::order::kPartitionSplit, aop::Scope::any(),
        [this](auto& inv) -> R {
          const auto& [problem] = inv.args();
          auto& ctx = inv.context();

          T& algebra = local_algebra(inv);
          if (!algebra.should_split(problem)) return inv.proceed();

          const std::vector<P> parts = algebra.split(problem);
          std::vector<concurrency::Future<R>> futures;
          futures.reserve(parts.size());
          for (const P& part : parts) {
            // An object creation performed while intercepting a method
            // call — exactly the paper's remark. It flows through
            // downstream creation advice (e.g. distribution placement).
            created_.fetch_add(1, std::memory_order_relaxed);
            auto solver = std::apply(
                [&ctx](const auto&... args) {
                  return ctx.template create<T>(args...);
                },
                ctor_args_);
            // The sub-solve is a fresh woven call: this advice applies to
            // it again (recursion), and so do concurrency/distribution.
            futures.push_back(
                ctx.template call_future<&T::solve>(solver, part));
          }

          R merged = futures.front().get();
          for (std::size_t i = 1; i < futures.size(); ++i)
            merged = algebra.merge(merged, futures[i].get());
          return merged;
        });
  }

  /// The problem algebra is consulted on the client; for remote targets a
  /// local scout instance stands in (solvers are assumed to carry no
  /// per-instance problem state, which the concept's const-ness implies).
  template <class Inv>
  T& local_algebra(Inv& inv) {
    if (T* local = inv.target().local()) return *local;
    std::lock_guard lock(scout_mutex_);
    if (!scout_) {
      scout_ = std::apply(
          [](const auto&... args) { return std::make_unique<T>(args...); },
          ctor_args_);
    }
    return *scout_;
  }

  std::tuple<std::decay_t<CtorArgs>...> ctor_args_{};
  std::atomic<std::uint64_t> created_{0};
  std::mutex scout_mutex_;
  std::unique_ptr<T> scout_;
};

}  // namespace apar::strategies
