#pragma once

#include <condition_variable>
#include <memory>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/concurrency/work_queue.hpp"
#include "apar/strategies/partition_common.hpp"
#include "apar/strategies/stage_concept.hpp"

namespace apar::strategies {

/// Demand-driven farm (the paper's "dynamic farm", Table 1 row FarmDRMI).
///
/// Work packs go into a shared queue; one persistent worker loop per
/// duplicate pulls packs and drives its own worker object. Load balances
/// itself: a slow worker simply pulls fewer packs.
///
/// This is the one strategy where the paper admits partition and
/// concurrency could not be separated ("the dynamic farm is an example
/// where we were not able yet to separate partition from concurrency
/// issues") — faithfully, this aspect owns its threads and needs no
/// ConcurrencyAspect; Table 1 lists FarmDRMI with an empty concurrency
/// column.
template <class T, class E, class... CtorArgs>
  requires Stage<T, E>
class DynamicFarmAspect : public aop::Aspect {
 public:
  struct Options {
    std::size_t duplicates = 2;
    std::size_t pack_size = 1000;
    CtorPartitioner<CtorArgs...> ctor_args =
        broadcast_ctor_args<CtorArgs...>();
  };

  DynamicFarmAspect(std::string name, Options options)
      : Aspect(std::move(name)), options_(std::move(options)) {
    register_duplication();
    register_split();
  }

  /// Runtime-tunable feeder depth — the AdaptationAspect's dynamic-farm
  /// knob: how many packs a worker loop pulls from the shared queue per
  /// lock hold. 1 reproduces the paper's pack-at-a-time demand pull;
  /// deeper values amortise the queue lock when packs are small and the
  /// queue-wait histogram shows contention. Read once per pull, so a
  /// change takes effect on each loop's next visit to the queue.
  void set_feeder_depth(std::size_t n) {
    feeder_depth_.store(n ? n : 1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t feeder_depth() const {
    return feeder_depth_.load(std::memory_order_relaxed);
  }

  explicit DynamicFarmAspect(Options options)
      : DynamicFarmAspect("DynamicFarm", std::move(options)) {}

  ~DynamicFarmAspect() override { stop_workers(); }

  [[nodiscard]] const std::vector<aop::Ref<T>>& workers() const {
    return workers_;
  }

  std::vector<E> gather_results(aop::Context& ctx) {
    std::vector<E> all;
    for (auto& worker : workers_) {
      std::vector<E> part = ctx.template call<&T::take_results>(worker);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

  /// Packs processed so far, per worker index (diagnostic: shows the load
  /// balance the demand-driven queue achieved).
  [[nodiscard]] std::vector<std::size_t> packs_per_worker() const {
    std::lock_guard lock(pending_mutex_);
    return packs_per_worker_;
  }

  void on_quiesce(aop::Context&) override {
    std::unique_lock lock(pending_mutex_);
    idle_cv_.wait(lock, [&] { return pending_ == 0; });
  }

  void on_detach(aop::Context&) override { stop_workers(); }

 private:
  void register_duplication() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          stop_workers();
          workers_.clear();
          const std::size_t k = options_.duplicates ? options_.duplicates : 1;
          for (std::size_t i = 0; i < k; ++i) {
            auto args = options_.ctor_args(i, k, inv.args());
            workers_.push_back(std::apply(
                [&](auto&&... a) {
                  return inv.proceed_with(std::forward<decltype(a)>(a)...);
                },
                std::move(args)));
          }
          {
            std::lock_guard lock(pending_mutex_);
            packs_per_worker_.assign(k, 0);
          }
          start_workers(inv.context());
          return workers_.front();
        });
  }

  void register_split() {
    this->template around_method<&T::process>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](auto& inv) {
          auto& [data] = inv.args();
          auto packs = split_into_packs<E>(data, options_.pack_size);
          if (packs.empty()) return;
          const std::size_t n = packs.size();
          {
            std::lock_guard lock(pending_mutex_);
            pending_ += n;
          }
          // One lock acquisition + one notify_all for the whole partition
          // instead of a lock/notify pair per pack.
          if (queue_->push_batch(packs) == 0) {
            // Queue closed under us (detach raced the split): nothing was
            // enqueued, so roll the accounting back or quiesce() hangs.
            std::lock_guard lock(pending_mutex_);
            pending_ -= n;
            if (pending_ == 0) idle_cv_.notify_all();
          }
        })
        // Each worker loop drives its OWN worker object, so the spawned
        // executions are object-confined: per-instance state cannot race
        // across them and the effect analyzer skips these signatures.
        // Demand-driven pull also makes the farm online-resizable from an
        // adapter's perspective: accepted packs sit in the closed-over
        // queue until SOME loop claims them, so retuning the feeder depth
        // (or the pool behind a composition) between pulls can neither
        // orphan nor double-run a pack.
        .mark_spawns_concurrency(/*confined_to_target=*/true)
        .mark_online_resizable();
  }

  void start_workers(aop::Context& ctx) {
    threads_.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      threads_.emplace_back([this, &ctx, i] { worker_loop(ctx, i); });
    }
  }

  void worker_loop(aop::Context& ctx, std::size_t index) {
    // Calls made from this loop are aspect-made, not core-made: without
    // this frame the split advice above would re-intercept them.
    aop::AspectFrame frame(*this);
    aop::Ref<T> self = workers_[index];
    while (true) {
      auto batch =
          queue_->pop_batch(feeder_depth_.load(std::memory_order_relaxed));
      if (batch.empty()) break;  // closed and drained
      for (auto& pack : batch) {
        ctx.template call<&T::process>(self, pack);
        std::lock_guard lock(pending_mutex_);
        ++packs_per_worker_[index];
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  void stop_workers() {
    queue_->close();
    for (auto& t : threads_) t.join();
    threads_.clear();
    // A fresh queue for a potential new duplication round.
    queue_ = std::make_unique<concurrency::WorkQueue<std::vector<E>>>();
  }

  Options options_;
  std::atomic<std::size_t> feeder_depth_{1};
  std::vector<aop::Ref<T>> workers_;
  std::unique_ptr<concurrency::WorkQueue<std::vector<E>>> queue_ =
      std::make_unique<concurrency::WorkQueue<std::vector<E>>>();
  std::vector<std::thread> threads_;

  mutable std::mutex pending_mutex_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;
  std::vector<std::size_t> packs_per_worker_;
};

}  // namespace apar::strategies
