#pragma once

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/strategies/partition_common.hpp"
#include "apar/strategies/stage_concept.hpp"

namespace apar::strategies {

/// Reusable pipeline partition protocol (paper §5.2, Figures 7-9).
///
/// Plugged onto a Stage class T, it changes the semantics of core
/// functionality without touching it:
///   1. *object duplication* — one `create<T>` in core code becomes a chain
///      of `duplicates` stages, each constructed with arguments derived by
///      the ctor partitioner (e.g. a sub-range of primes);
///   2. *method call split* — one `process(all)` call from core code
///      becomes many `filter(pack)` calls on the first stage;
///   3. *call forwarding* — every filter(pack) call, including those made
///      by this aspect itself, is propagated to the next stage after the
///      current one proceeds; packs leaving the last stage are delivered
///      to it via collect().
///
/// The aspect is oblivious-composable: the concurrency aspect may make the
/// filter hops asynchronous and the distribution aspect may place the
/// stages on remote nodes — this class never mentions either.
template <class T, class E, class... CtorArgs>
  requires Stage<T, E>
class PipelineAspect : public aop::Aspect {
 public:
  struct Options {
    std::size_t duplicates = 2;
    std::size_t pack_size = 1000;
    CtorPartitioner<CtorArgs...> ctor_args;  ///< required
  };

  PipelineAspect(std::string name, Options options)
      : Aspect(std::move(name)), options_(std::move(options)) {
    register_duplication();
    register_split();
    register_forward();
  }

  explicit PipelineAspect(Options options)
      : PipelineAspect("Pipeline", std::move(options)) {}

  /// The aspect-managed stages, first to last (empty until the core
  /// functionality creates its object).
  [[nodiscard]] const std::vector<aop::Ref<T>>& stages() const {
    return stages_;
  }

  /// Drain results: take_results() from every stage, concatenated in stage
  /// order. Goes through the weaving context so remote stages work.
  std::vector<E> gather_results(aop::Context& ctx) {
    std::vector<E> all;
    for (auto& stage : stages_) {
      std::vector<E> part = ctx.template call<&T::take_results>(stage);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

 private:
  void register_duplication() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          stages_.clear();
          next_.clear();
          const std::size_t k = options_.duplicates ? options_.duplicates : 1;
          for (std::size_t i = 0; i < k; ++i) {
            auto args = options_.ctor_args(i, k, inv.args());
            auto ref = std::apply(
                [&](auto&&... a) {
                  return inv.proceed_with(
                      std::forward<decltype(a)>(a)...);
                },
                std::move(args));
            if (i > 0) next_[stages_.back().identity()] = ref;
            stages_.push_back(std::move(ref));
          }
          return stages_.front();
        });
  }

  void register_split() {
    this->template around_method<&T::process>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](auto& inv) {
          auto& [data] = inv.args();
          auto packs = split_into_packs<E>(data, options_.pack_size);
          for (auto& pack : packs) {
            // A fresh top-level call on the first stage: downstream aspects
            // (concurrency, distribution) and this aspect's own forward
            // advice all apply to it.
            inv.context().template call<&T::filter>(inv.target(), pack);
          }
          // The original process() call is replaced; results accumulate in
          // the stages and are gathered via gather_results().
        });
  }

  void register_forward() {
    this->template around_method<&T::filter>(
        aop::order::kPartitionForward, aop::Scope::any(), [this](auto& inv) {
          inv.proceed();
          auto& [pack] = inv.args();
          auto it = next_.find(inv.target().identity());
          if (it != next_.end()) {
            inv.context().template call<&T::filter>(it->second, pack);
          } else {
            // End of the pipeline: whatever survived is a result.
            inv.context().template call<&T::collect>(inv.target(), pack);
          }
        });
  }

  Options options_;
  std::vector<aop::Ref<T>> stages_;
  std::map<const void*, aop::Ref<T>> next_;
};

}  // namespace apar::strategies
