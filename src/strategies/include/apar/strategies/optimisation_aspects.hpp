#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <functional>

#include "apar/aop/aop.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/concurrency/barrier.hpp"
#include "apar/concurrency/future.hpp"
#include "apar/strategies/concurrency_aspect.hpp"

namespace apar::strategies::optimisation {

/// Result memoisation over a sharded concurrent LRU (the §4.5 cache grown
/// up). Lives in src/cache so the substrate stays below strategies;
/// re-exported here because it belongs to the optimisation family.
template <class T>
using CacheAspect = cache::CacheAspect<T>;
using cache::KeyScope;

/// Models the paper's single-machine constraint for the FarmThreads
/// version: one dual-Xeon node has 4 hardware contexts, so at most 4 local
/// calls make progress concurrently (Figure 17's plateau past 4 filters).
/// Remote targets pass through: their compute is bounded by the remote
/// node's executors instead.
template <class T>
class LocalCpuAspect : public aop::Aspect {
 public:
  LocalCpuAspect(std::string name, std::size_t hardware_contexts)
      : Aspect(std::move(name)), limiter_(hardware_contexts) {}

  explicit LocalCpuAspect(std::size_t hardware_contexts)
      : LocalCpuAspect("LocalCpu", hardware_contexts) {}

  template <auto M>
  LocalCpuAspect& limit_method() {
    this->template around_method<M>(
        aop::order::kOptimisation, aop::Scope::any(), [this](auto& inv) {
          if (inv.target().is_remote()) return inv.proceed();
          auto permit = limiter_.permit();
          return inv.proceed();
        });
    return *this;
  }

  [[nodiscard]] std::size_t hardware_contexts() const {
    return limiter_.limit();
  }

 private:
  concurrency::ParallelismLimiter limiter_;
};

/// Communication packing (paper §4.4): coalesce consecutive packs headed to
/// the same target into one bigger call, halving (or better) the message
/// count at the cost of latency for the buffered pack. Sits between the
/// concurrency and distribution layers; flushes stragglers at quiesce.
template <class T, class E>
class PackingAspect : public aop::Aspect {
 public:
  struct Options {
    std::size_t batch_packs = 2;  ///< coalesce this many packs per call
  };

  PackingAspect(std::string name, Options options)
      : Aspect(std::move(name)), options_(options) {
    register_packing();
  }

  explicit PackingAspect(Options options)
      : PackingAspect("Packing", options) {}

  [[nodiscard]] std::uint64_t coalesced_calls() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

  void on_quiesce(aop::Context& ctx) override { flush_all(ctx); }

 private:
  void register_packing() {
    this->template around_method<&T::process>(
        aop::order::kOptimisation, aop::Scope::not_within(this->name()),
        [this](auto& inv) {
          auto& [pack] = inv.args();
          std::vector<E> merged;
          {
            std::lock_guard lock(mutex_);
            auto& buffer = buffers_[inv.target().identity()];
            buffer.target = inv.target();
            buffer.items.insert(buffer.items.end(), pack.begin(), pack.end());
            ++buffer.pending_packs;
            if (buffer.pending_packs < options_.batch_packs) return;
            merged = std::move(buffer.items);
            buffer.items.clear();
            buffer.pending_packs = 0;
          }
          coalesced_.fetch_add(1, std::memory_order_relaxed);
          inv.proceed_with(merged);
        });
  }

  void flush_all(aop::Context& ctx) {
    std::map<const void*, Buffer> drained;
    {
      std::lock_guard lock(mutex_);
      drained.swap(buffers_);
    }
    // Flushed calls re-enter the context but are excluded from this
    // aspect's own advice by the not_within scope above.
    aop::AspectFrame frame(*this);
    for (auto& [identity, buffer] : drained) {
      if (buffer.items.empty()) continue;
      ctx.template call<&T::process>(buffer.target, buffer.items);
    }
  }

  struct Buffer {
    aop::Ref<T> target;
    std::vector<E> items;
    std::size_t pending_packs = 0;
  };

  Options options_;
  std::mutex mutex_;
  std::map<const void*, Buffer> buffers_;
  std::atomic<std::uint64_t> coalesced_{0};
};

/// Object cache (paper §4.4 "cache objects"): repeated creations with the
/// same constructor arguments return the same aspect-managed instance.
template <class T, class... CtorArgs>
class ObjectCacheAspect : public aop::Aspect {
 public:
  explicit ObjectCacheAspect(std::string name = "ObjectCache")
      : Aspect(std::move(name)) {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        aop::order::kOptimisation, aop::Scope::any(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          const auto key = inv.args();
          {
            std::lock_guard lock(mutex_);
            auto it = cache_.find(key);
            if (it != cache_.end()) {
              hits_.fetch_add(1, std::memory_order_relaxed);
              return it->second;
            }
          }
          auto ref = inv.proceed();
          std::lock_guard lock(mutex_);
          misses_.fetch_add(1, std::memory_order_relaxed);
          cache_.emplace(key, ref);
          return ref;
        });
  }

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::map<std::tuple<std::decay_t<CtorArgs>...>, aop::Ref<T>> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Thread-pool optimisation (paper §4.4 "thread pools"): when attached, it
/// finds the named concurrency aspect and reroutes its asynchronous calls
/// through a pooled executor; detaching restores thread-per-call. A pure
/// meta-aspect — it registers no advice of its own.
class ThreadPoolOptimisation : public aop::Aspect {
 public:
  ThreadPoolOptimisation(std::string name, std::string concurrency_aspect,
                         std::size_t threads)
      : Aspect(std::move(name)),
        concurrency_aspect_(std::move(concurrency_aspect)),
        threads_(threads) {}

  ThreadPoolOptimisation(std::string concurrency_aspect, std::size_t threads)
      : ThreadPoolOptimisation("ThreadPoolOpt", std::move(concurrency_aspect),
                               threads) {}

  void on_attach(aop::Context& ctx) override {
    if (auto aspect = ctx.find(concurrency_aspect_)) {
      if (auto* control = dynamic_cast<AsyncControl*>(aspect.get())) {
        control->use_pool(threads_);
        controlled_ = aspect;
      }
    }
  }

  void on_detach(aop::Context&) override {
    if (auto aspect = controlled_.lock()) {
      if (auto* control = dynamic_cast<AsyncControl*>(aspect.get())) {
        control->use_thread_per_call();
      }
    }
  }

 private:
  std::string concurrency_aspect_;
  std::size_t threads_;
  std::weak_ptr<aop::Aspect> controlled_;
};

/// Retry/failover aspect: retries calls that fail with a middleware error,
/// optionally failing over to another target. A crosscutting resilience
/// concern in the same spirit as the paper's optimisation category — the
/// core and the other aspects stay oblivious of failures.
template <class T>
class RetryAspect : public aop::Aspect {
 public:
  struct Options {
    int attempts = 3;  ///< total tries (1 = no retry)
    /// Supplies a replacement target for retry `attempt` (1-based) after
    /// `failed` raised an error; empty keeps retrying the same target.
    std::function<aop::Ref<T>(int attempt, const aop::Ref<T>& failed)>
        failover;
  };

  RetryAspect(std::string name, Options options)
      : Aspect(std::move(name)), options_(std::move(options)) {}

  explicit RetryAspect(Options options)
      : RetryAspect("Retry", std::move(options)) {}

  template <auto M>
  RetryAspect& retry_method() {
    this->template around_method<M>(
        aop::order::kOptimisation, aop::Scope::any(), [this](auto& inv) {
          for (int attempt = 1;; ++attempt) {
            try {
              return inv.proceed();
            } catch (const cluster::rpc::RpcError&) {
              if (attempt >= options_.attempts) throw;
              retries_.fetch_add(1, std::memory_order_relaxed);
              if (options_.failover)
                inv.retarget(options_.failover(attempt, inv.target()));
            }
          }
        });
    return *this;
  }

  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::atomic<std::uint64_t> retries_{0};
};

/// Replicated computation (paper §4.4's fourth optimisation example): a
/// value-returning call is issued to every replica concurrently and the
/// first answer wins — hiding the latency of a slow or flaky node. Losing
/// replicas finish in the background (collected at quiesce).
template <class T>
class ReplicatedComputationAspect : public aop::Aspect {
 public:
  explicit ReplicatedComputationAspect(std::string name = "Replication")
      : Aspect(std::move(name)) {}

  /// The replica set calls are fanned out to; typically a partition
  /// aspect's managed objects.
  void set_replicas(std::vector<aop::Ref<T>> replicas) {
    std::lock_guard lock(mutex_);
    replicas_ = std::move(replicas);
  }

  template <auto M>
  ReplicatedComputationAspect& replicate_method() {
    using Traits = aop::detail::MemberFnTraits<decltype(M)>;
    register_replicated<M, typename Traits::Ret>(
        std::type_identity<typename Traits::ArgsTuple>{});
    return *this;
  }

  [[nodiscard]] std::uint64_t fanouts() const {
    return fanouts_.load(std::memory_order_relaxed);
  }

 private:
  template <auto M, class R, class... A>
  void register_replicated(std::type_identity<std::tuple<A...>>) {
    static_assert(!std::is_void_v<R>,
                  "replicated computation needs a result to race on");
    this->template around_method<M>(
        aop::order::kOptimisation, aop::Scope::not_within(this->name()),
        [this](aop::CallInvocation<T, R, A...>& inv) -> R {
          std::vector<aop::Ref<T>> replicas;
          {
            std::lock_guard lock(mutex_);
            replicas = replicas_;
          }
          if (replicas.size() < 2) return inv.proceed();
          fanouts_.fetch_add(1, std::memory_order_relaxed);

          using Value = std::remove_cvref_t<R>;
          auto& ctx = inv.context();
          auto promise = std::make_shared<concurrency::Promise<Value>>();
          auto done = std::make_shared<std::atomic<bool>>(false);
          auto failures = std::make_shared<std::atomic<std::size_t>>(0);
          auto args_copy =
              std::make_shared<std::tuple<std::decay_t<A>...>>(inv.args());
          const std::size_t total = replicas.size();
          for (auto& replica : replicas) {
            ctx.tasks().spawn([this, &ctx, replica, promise, done, failures,
                               args_copy, total] {
              // Calls from here are aspect-made: not_within(this) keeps
              // them from being re-replicated.
              aop::AspectFrame frame(*this);
              try {
                Value result = std::apply(
                    [&](auto&... as) {
                      return ctx.template call<M>(replica, as...);
                    },
                    *args_copy);
                if (!done->exchange(true))
                  promise->set_value(std::move(result));
              } catch (...) {
                if (failures->fetch_add(1) + 1 == total &&
                    !done->exchange(true))
                  promise->set_exception(std::current_exception());
              }
            });
          }
          return promise->future().get();
        });
  }

  std::mutex mutex_;
  std::vector<aop::Ref<T>> replicas_;
  std::atomic<std::uint64_t> fanouts_{0};
};

}  // namespace apar::strategies::optimisation
