#pragma once

/// Umbrella header for the reusable parallelisation aspects — the paper's
/// four concern categories (§4) as pluggable modules:
///
///  - partition:   PipelineAspect, FarmAspect, DynamicFarmAspect,
///                 HeartbeatAspect (merged with concurrency, like the
///                 paper's dynamic farm)
///  - concurrency: ConcurrencyAspect (async calls + per-object monitors)
///  - distribution: DistributionAspect over a pluggable Middleware
///  - optimisation: LocalCpuAspect, PackingAspect, ObjectCacheAspect,
///                 ThreadPoolOptimisation, CacheAspect (result
///                 memoisation over a sharded LRU, src/cache)
///  - testing:     ChaosAspect (seeded schedule perturbation) — with
///                 cluster::FaultInjectingMiddleware, the proof that test
///                 concerns plug and unplug like parallelisation concerns
#include "apar/strategies/chaos_aspect.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/divide_conquer_aspect.hpp"
#include "apar/strategies/dynamic_farm_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"
#include "apar/strategies/optimisation_aspects.hpp"
#include "apar/strategies/partition_common.hpp"
#include "apar/strategies/pipeline_aspect.hpp"
#include "apar/strategies/stage_concept.hpp"
