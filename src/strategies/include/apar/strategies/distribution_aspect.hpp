#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "apar/aop/aop.hpp"
#include "apar/cluster/fabric.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/common/rng.hpp"
#include "apar/serial/archive.hpp"
#include "apar/serial/wire_types.hpp"

namespace apar::strategies {

/// Where the distribution aspect places each newly created object.
enum class PlacementPolicy { kRoundRobin, kRandom };

/// A Ref's remote binding: which middleware to speak and where the object
/// lives. The aop layer treats this as opaque.
class RemoteObjectBinding final : public aop::RemoteBinding {
 public:
  RemoteObjectBinding(cluster::RemoteHandle handle,
                      cluster::Middleware& middleware, std::string class_name)
      : handle_(handle),
        middleware_(&middleware),
        class_name_(std::move(class_name)) {}

  [[nodiscard]] const cluster::RemoteHandle& handle() const { return handle_; }
  [[nodiscard]] cluster::Middleware& middleware() const { return *middleware_; }

  [[nodiscard]] std::string describe() const override {
    return class_name_ + "@" + handle_.str() + " via " +
           std::string(middleware_->name());
  }

 private:
  cluster::RemoteHandle handle_;
  cluster::Middleware* middleware_;
  std::string class_name_;
};

namespace detail {
/// Read one reply value per argument; write it back through non-const
/// lvalue-reference parameters (RMI-ish copy-restore, so a remote
/// `filter(pack&)` updates the caller's pack exactly like a local call).
template <class Arg>
void read_restore(serial::Reader& reader, Arg& arg) {
  std::decay_t<Arg> tmp{};
  reader.value(tmp);
  arg = std::move(tmp);
}
template <class Arg>
void read_restore(serial::Reader& reader, const Arg& arg) {
  std::decay_t<Arg> tmp{};
  reader.value(tmp);
  (void)arg;  // const parameter: the echoed value is discarded
}

template <class Tuple>
struct TupleWireOk;
template <class... A>
struct TupleWireOk<std::tuple<A...>>
    : std::bool_constant<(serial::kWireSerializable<A> && ...)> {};

/// Per-argument wire metadata for a join point, recorded on the advice so
/// apar-analyze can check distribution hazards without executing anything.
/// Also notes every type in the global TypeRegistry.
template <class... A>
std::vector<aop::WireArg> note_wire_args(std::type_identity<std::tuple<A...>>) {
  (serial::TypeRegistry::global().note<A>(), ...);
  return {aop::WireArg{serial::wire_type_name<A>(),
                       serial::kWireSerializable<A>}...};
}
}  // namespace detail

/// The paper's Distribution aspect (§4.3, Figure 13/14), reusable over any
/// registered class: creations flowing through it are placed on simulated
/// cluster nodes via a middleware, registered under generated names
/// ("PS1", "PS2", ... — the paper's modification 2/3), and calls on remote
/// references are redirected through the middleware with copy-restore
/// semantics (modification 4). Local references pass through untouched, so
/// the same application runs shared-memory by simply unplugging this
/// aspect.
template <class T, class... CtorArgs>
class DistributionAspect : public aop::Aspect {
 public:
  struct Options {
    PlacementPolicy placement = PlacementPolicy::kRoundRobin;
    /// Bind each created object in the name server and look it up again,
    /// like Figure 14's findRemoteObject (costs a registry round-trip).
    bool register_names = true;
    std::uint64_t seed = 7;  ///< for kRandom placement
  };

  /// `fabric` is the set of placement targets — the in-process Cluster or
  /// a net::TcpFabric of real servers; the aspect cannot tell the
  /// difference (that is the point of the seam).
  DistributionAspect(std::string name, cluster::Fabric& fabric,
                     cluster::Middleware& middleware, Options options = {})
      : Aspect(std::move(name)),
        fabric_(fabric),
        middleware_(middleware),
        options_(options),
        rng_(options.seed) {
    register_creation();
  }

  /// Redirect calls of method M on remote refs through the middleware.
  /// `allow_one_way` lets void calls go fire-and-forget when the
  /// middleware supports it (MPP); completion is awaited at quiesce.
  template <auto M>
  DistributionAspect& distribute_method(bool allow_one_way = false) {
    using Traits = aop::detail::MemberFnTraits<decltype(M)>;
    using R = typename Traits::Ret;
    // Whether every argument (and the result) can cross the wire. When not,
    // the advice still compiles and local calls still work — only an actual
    // remote dispatch throws. apar-analyze flags the hazard statically from
    // the wire metadata recorded below.
    constexpr bool kWireOk =
        detail::TupleWireOk<typename Traits::ArgsTuple>::value &&
        (std::is_void_v<R> ||
         serial::kWireSerializable<std::remove_cvref_t<R>>);
    this->template around_method<M>(
            aop::order::kDistribution, aop::Scope::any(),
            [this, allow_one_way](auto& inv) -> R {
              auto binding = std::dynamic_pointer_cast<RemoteObjectBinding>(
                  inv.target().remote_binding());
              if (!binding) return inv.proceed();  // local object: dispatch here

              const auto method_name = aop::method_name_of<M>();
              if constexpr (!kWireOk) {
                throw serial::SerialError(
                    "cannot distribute call to " + std::string(method_name) +
                    ": argument or result type is not wire-serializable");
              } else {
                // A hybrid middleware may carry this method on a different
                // backend (paper §5.3); encode with the routed backend's
                // format.
                cluster::Middleware& mw = middleware_.route_for(method_name);
                const auto format = mw.wire_format();
                auto payload = std::apply(
                    [&](const auto&... args) {
                      return serial::encode(format, args...);
                    },
                    inv.args());

                if constexpr (std::is_void_v<R>) {
                  if (allow_one_way && mw.supports_one_way()) {
                    mw.invoke_one_way(binding->handle(), method_name,
                                      std::move(payload));
                    return;
                  }
                  auto reply = mw.invoke(binding->handle(), method_name,
                                         std::move(payload));
                  serial::Reader reader(reply, format);
                  std::apply(
                      [&](auto&... args) {
                        (detail::read_restore(reader, args), ...);
                      },
                      inv.args());
                } else {
                  auto reply = mw.invoke(binding->handle(), method_name,
                                         std::move(payload));
                  serial::Reader reader(reply, format);
                  std::apply(
                      [&](auto&... args) {
                        (detail::read_restore(reader, args), ...);
                      },
                      inv.args());
                  std::remove_cvref_t<R> result{};
                  reader.value(result);
                  return result;
                }
              }
            })
        .mark_distributes(
            detail::note_wire_args(
                std::type_identity<typename Traits::ArgsTuple>{}),
            middleware_.wire_transport());
    return *this;
  }

  void on_quiesce(aop::Context&) override { fabric_.drain(); }

  /// Objects placed so far.
  [[nodiscard]] std::size_t placed() const {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  void register_creation() {
    constexpr bool kWireOk =
        (serial::kWireSerializable<std::decay_t<CtorArgs>> && ...);
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        aop::order::kDistribution, aop::Scope::any(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv)
            -> aop::Ref<T> {
          if constexpr (!kWireOk) {
            throw serial::SerialError(
                "cannot place " + std::string(aop::class_name_of<T>()) +
                " remotely: constructor argument type is not "
                "wire-serializable");
          } else {
            cluster::Middleware& mw = middleware_.route_for("new");
            const auto format = mw.wire_format();
            auto payload = std::apply(
                [&](const auto&... args) {
                  return serial::encode(format, args...);
                },
                inv.args());
            const cluster::NodeId node = pick_node();
            const std::string class_name(aop::class_name_of<T>());
            auto handle = mw.create(node, class_name, std::move(payload));
            if (options_.register_names) {
              // Figure 14: name "PS<instance number>", bind, then look the
              // reference up again through the registry.
              const auto n = created_.load(std::memory_order_relaxed) + 1;
              const std::string bound_name = "PS" + std::to_string(n);
              fabric_.bind_name(bound_name, handle);
              auto resolved = mw.lookup(bound_name);
              if (resolved) handle = *resolved;
            }
            created_.fetch_add(1, std::memory_order_relaxed);
            return aop::Ref<T>::make_remote(
                std::make_shared<RemoteObjectBinding>(handle, middleware_,
                                                      class_name));
          }
        })
        .mark_distributes(
            detail::note_wire_args(
                std::type_identity<std::tuple<std::decay_t<CtorArgs>...>>{}),
            middleware_.wire_transport());
  }

  cluster::NodeId pick_node() {
    const std::size_t n = fabric_.size();
    if (options_.placement == PlacementPolicy::kRandom) {
      std::lock_guard lock(rng_mutex_);
      return static_cast<cluster::NodeId>(rng_.uniform(0, n - 1));
    }
    return static_cast<cluster::NodeId>(
        next_node_.fetch_add(1, std::memory_order_relaxed) % n);
  }

  cluster::Fabric& fabric_;
  cluster::Middleware& middleware_;
  Options options_;
  std::atomic<std::size_t> next_node_{0};
  std::atomic<std::size_t> created_{0};
  std::mutex rng_mutex_;
  common::Rng rng_;
};

}  // namespace apar::strategies
