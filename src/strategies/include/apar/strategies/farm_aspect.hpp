#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/common/rng.hpp"
#include "apar/concurrency/task_group.hpp"
#include "apar/strategies/partition_common.hpp"
#include "apar/strategies/stage_concept.hpp"

namespace apar::strategies {

/// How the farm picks a worker for each pack.
enum class RoutingPolicy { kRoundRobin, kRandom };

/// Reusable farm partition protocol (paper §5.2, Figure 10): "each filter
/// has ALL the primes ... and each pack can be processed by ANY filter".
///
/// Differences from the pipeline protocol are exactly the paper's two
/// changes: constructor arguments are broadcast to every duplicate, and
/// each split call is routed to a single worker instead of being forwarded
/// along a chain. Workers execute process() (full work + result retention),
/// so no reply is needed — which is what lets a one-way middleware shine.
template <class T, class E, class... CtorArgs>
  requires Stage<T, E>
class FarmAspect : public aop::Aspect {
 public:
  struct Options {
    std::size_t duplicates = 2;
    std::size_t pack_size = 1000;
    RoutingPolicy routing = RoutingPolicy::kRoundRobin;
    std::uint64_t seed = 42;  ///< for kRandom routing
    /// Submit a partition's packs as ONE pool batch (TaskGroup::BatchScope
    /// over ThreadPool::bulk_post) when a pooled concurrency aspect sits
    /// below: one wake sweep instead of a locked post per pack. Thread-per-
    /// call and distribution dispatch are unaffected. Disable to force the
    /// pack-at-a-time submission the paper describes.
    bool batch_submit = true;
    /// Broadcast by default; replace to give workers distinct arguments.
    CtorPartitioner<CtorArgs...> ctor_args =
        broadcast_ctor_args<CtorArgs...>();
  };

  FarmAspect(std::string name, Options options)
      : Aspect(std::move(name)), options_(std::move(options)), rng_(options_.seed) {
    pack_size_.store(options_.pack_size ? options_.pack_size : 1,
                     std::memory_order_relaxed);
    register_duplication();
    register_split();
    register_route();
  }

  explicit FarmAspect(Options options)
      : FarmAspect("Farm", std::move(options)) {}

  [[nodiscard]] const std::vector<aop::Ref<T>>& workers() const {
    return workers_;
  }

  /// Runtime-tunable pack (grain) size — the AdaptationAspect's farm
  /// knob. Read once per split, so a change applies to the NEXT partition
  /// cleanly: packs already fanned out are unaffected, which is exactly
  /// why the split advice may declare mark_online_resizable().
  void set_pack_size(std::size_t n) {
    pack_size_.store(n ? n : 1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pack_size() const {
    return pack_size_.load(std::memory_order_relaxed);
  }

  /// Concatenated take_results() of all workers.
  std::vector<E> gather_results(aop::Context& ctx) {
    std::vector<E> all;
    for (auto& worker : workers_) {
      std::vector<E> part = ctx.template call<&T::take_results>(worker);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

 private:
  void register_duplication() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        aop::order::kPartitionSplit, aop::Scope::core_only(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          workers_.clear();
          const std::size_t k = options_.duplicates ? options_.duplicates : 1;
          for (std::size_t i = 0; i < k; ++i) {
            auto args = options_.ctor_args(i, k, inv.args());
            workers_.push_back(std::apply(
                [&](auto&&... a) {
                  return inv.proceed_with(std::forward<decltype(a)>(a)...);
                },
                std::move(args)));
          }
          return workers_.front();
        });
  }

  void register_split() {
    this->template around_method<&T::process>(
            aop::order::kPartitionSplit, aop::Scope::core_only(),
            [this](auto& inv) {
              auto& [data] = inv.args();
              auto packs =
                  split_into_packs<E>(data, pack_size_.load(std::memory_order_relaxed));
              if (options_.batch_submit) {
                // Pooled async dispatches below collect into one
                // bulk_post, flushed when the scope closes; non-pooled
                // dispatch is unaffected by the scope.
                concurrency::TaskGroup::BatchScope batch(
                    inv.context().tasks());
                for (auto& pack : packs) {
                  // Stay on the process() chain: the route advice below
                  // picks the worker, then concurrency/distribution advice
                  // apply.
                  inv.proceed_with(pack);
                }
              } else {
                for (auto& pack : packs) {
                  inv.proceed_with(pack);
                }
              }
            })
        // Fan-out: the packs proceed down chains the composition is
        // expected to make asynchronous, and the route advice may hand
        // overlapping packs to the SAME worker — so farmed signatures are
        // unconfined race candidates for the effect analyzer. The fan-out
        // is online-resizable: each pack is an independent unit the
        // substrate may run on any worker at any pool size, and the grain
        // knob is read per split — so an adapter may retune both mid-run.
        .mark_spawns_concurrency()
        .mark_online_resizable();
  }

  void register_route() {
    this->template around_method<&T::process>(
        aop::order::kPartitionForward, aop::Scope::any(), [this](auto& inv) {
          inv.retarget(pick_worker());
          inv.proceed();
        });
  }

  aop::Ref<T> pick_worker() {
    const std::size_t k = workers_.size();
    if (k == 0)
      throw std::logic_error(
          "farm routing before duplication: was the worker set created "
          "through the weaving context?");
    if (options_.routing == RoutingPolicy::kRandom) {
      std::lock_guard lock(rng_mutex_);
      return workers_[rng_.uniform(0, k - 1)];
    }
    return workers_[next_.fetch_add(1, std::memory_order_relaxed) % k];
  }

  Options options_;
  std::atomic<std::size_t> pack_size_{1};
  std::vector<aop::Ref<T>> workers_;
  std::atomic<std::size_t> next_{0};
  std::mutex rng_mutex_;
  common::Rng rng_;
};

}  // namespace apar::strategies
