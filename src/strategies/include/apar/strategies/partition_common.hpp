#pragma once

#include <cstddef>
#include <functional>
#include <tuple>
#include <vector>

namespace apar::strategies {

/// Split one large pack into sub-packs of at most `pack_size` elements —
/// the default method-call splitter (paper §4.1, Figure 5).
template <class E>
std::vector<std::vector<E>> split_into_packs(const std::vector<E>& data,
                                             std::size_t pack_size) {
  std::vector<std::vector<E>> packs;
  if (pack_size == 0) pack_size = 1;
  packs.reserve((data.size() + pack_size - 1) / pack_size);
  for (std::size_t begin = 0; begin < data.size(); begin += pack_size) {
    const std::size_t end = std::min(begin + pack_size, data.size());
    packs.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(begin),
                       data.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return packs;
}

/// How a partition aspect derives each duplicate's constructor arguments
/// from the original creation (paper Figure 8: "create filter with specific
/// parameters"). Receives the duplicate index, the duplicate count, and the
/// original argument tuple.
template <class... CtorArgs>
using CtorPartitioner = std::function<std::tuple<CtorArgs...>(
    std::size_t index, std::size_t count, const std::tuple<CtorArgs...>&)>;

/// Broadcast partitioner: every duplicate gets the original arguments —
/// the farm's behaviour (§5.2: "constructor parameters are broadcasted").
template <class... CtorArgs>
CtorPartitioner<CtorArgs...> broadcast_ctor_args() {
  return [](std::size_t, std::size_t,
            const std::tuple<CtorArgs...>& original) { return original; };
}

}  // namespace apar::strategies
