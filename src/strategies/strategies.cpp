// The strategies library is header-only templates; this anchor keeps the
// CMake target non-empty and compiles the umbrella under library flags.
#include "apar/strategies/strategies.hpp"
