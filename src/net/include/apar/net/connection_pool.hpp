#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "apar/net/socket.hpp"

namespace apar::net {

/// Per-endpoint pool of idle TCP connections. Checkout order:
///
///   1. Pop an idle connection for the endpoint and poll-validate it
///      (Socket::idle_and_healthy). Stale connections — the server
///      restarted, or the peer pushed unexpected bytes — are discarded,
///      not repaired.
///   2. No healthy idle connection: dial a new one before `deadline`.
///
/// Callers return healthy connections with give_back() after a complete
/// request/reply exchange; a connection in an unknown state (an exchange
/// failed mid-way) must simply be dropped, which closes it.
class ConnectionPool {
 public:
  struct Stats {
    std::uint64_t dials = 0;    ///< fresh connections established
    std::uint64_t reuses = 0;   ///< healthy idle connections handed out
    std::uint64_t discards = 0; ///< stale idle connections thrown away
    std::uint64_t evictions = 0; ///< idle connections dropped by evict()
  };

  explicit ConnectionPool(std::size_t max_idle_per_endpoint = 8)
      : max_idle_(max_idle_per_endpoint) {}

  /// What acquire() handed out: the connection plus whether it was a
  /// reused idle one (callers count fresh dials as connects/reconnects).
  struct Checkout {
    Socket socket;
    bool reused = false;
  };

  /// Get a connection to `endpoint`, reusing an idle one when possible.
  Checkout acquire(const Endpoint& endpoint, Deadline deadline);

  /// Return a connection that completed its exchange cleanly. Beyond the
  /// per-endpoint idle cap the connection is closed instead.
  void give_back(const Endpoint& endpoint, Socket socket);

  /// Drop every idle connection to `endpoint` and return how many were
  /// dropped. Poll-validation cannot catch a server that was drained or
  /// restarted but whose old sockets are still half-open (nothing readable
  /// yet), so when a REUSED connection fails mid-exchange its idle
  /// siblings — dialed in the same server era — are presumed stale too and
  /// evicted wholesale; the next acquire() dials fresh.
  std::size_t evict(const Endpoint& endpoint);

  /// Drop every idle connection.
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t idle_count(const Endpoint& endpoint) const;

 private:
  const std::size_t max_idle_;
  mutable std::mutex mutex_;
  std::map<Endpoint, std::vector<Socket>> idle_;
  Stats stats_;
};

}  // namespace apar::net
