#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apar/obs/trace_context.hpp"
#include "apar/serial/archive.hpp"

namespace apar::net {

/// Length-prefixed wire framing for the TCP transport.
///
/// Every message is one frame: an 18-byte fixed header followed by
/// `payload_len` payload bytes. All header integers are little-endian and
/// written byte-by-byte (never memcpy'd from host structs), so the frame
/// bytes are identical on every platform — tests/net/test_frame.cpp pins
/// them as golden vectors.
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     2  magic 0x5041 ("AP" when read as LE u16)
///        2     1  protocol version (kProtocolVersion)
///        3     1  serial::Format of the payload (0 compact, 1 verbose)
///        4     1  Op
///        5     1  flags (bit 0 = kFlagTraceContext; other bits reserved,
///                 must be 0)
///        6     4  payload length in bytes (u32 LE)
///       10     8  request id (u64 LE) — echoed verbatim in the reply
///
/// When kFlagTraceContext is set, the LAST kTraceContextSize bytes of the
/// payload are a trace-context trailer: trace_id (u64 LE) then span_id
/// (u64 LE) of the caller's wire span, letting server-side spans join the
/// caller's trace. The trailer sits AFTER the envelope + argument bytes
/// (and inside payload_len), so a legacy peer that never sets the flag
/// produces byte-identical frames to protocol version 1 before this bit
/// existed — unflagged peers keep working, both directions.
///
/// The payload of request ops starts with a fixed *envelope* (object ids
/// and method/class names, encoded with the explicit LE helpers below,
/// independent of the serial format) followed by the serial-encoded
/// argument bytes in the header's declared format. Keeping the envelope
/// out of serial::Writer means the server can route a frame without
/// knowing how to decode its arguments.
struct FrameHeader {
  static constexpr std::uint16_t kMagic = 0x5041;  // "AP" little-endian
  static constexpr std::uint8_t kProtocolVersion = 1;
  static constexpr std::size_t kSize = 18;
  /// Upper bound on payload_len; a peer announcing more is treated as a
  /// protocol error rather than an allocation request.
  static constexpr std::uint32_t kMaxPayload = 64u * 1024u * 1024u;

  enum class Op : std::uint8_t {
    kCreate = 1,      ///< construct a registered class on the server
    kCall = 2,        ///< synchronous method invocation
    kOneWay = 3,      ///< method invocation answered by an empty ack
    kLookup = 4,      ///< name-server lookup
    kBind = 5,        ///< name-server bind
    kReplyOk = 6,     ///< success reply; payload depends on the request op
    kReplyError = 7,  ///< failure reply; payload is the UTF-8 error message
    kTelemetry = 8,   ///< node telemetry: metrics JSON + tagged trace flush
  };

  /// flags bit 0: payload carries the trace-context trailer (see above).
  static constexpr std::uint8_t kFlagTraceContext = 0x01;
  /// Trailer size when kFlagTraceContext is set: trace_id + span_id.
  static constexpr std::size_t kTraceContextSize = 16;

  serial::Format format = serial::Format::kCompact;
  Op op = Op::kCall;
  std::uint8_t flags = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t request_id = 0;
};

/// Render a header into its canonical 18 bytes.
std::array<std::byte, FrameHeader::kSize> encode_header(
    const FrameHeader& header);

/// Parse and validate 18 header bytes. Throws NetError{kProtocol} on bad
/// magic, unsupported version, unknown op/format, any reserved flag bit
/// (only kFlagTraceContext is defined), or a payload length above
/// kMaxPayload.
FrameHeader decode_header(const std::byte* data, std::size_t size);

/// Short stable op name ("call", "lookup", ...) for span names and logs.
[[nodiscard]] std::string_view op_name(FrameHeader::Op op);

/// Append the kTraceContextSize-byte trace trailer (trace_id then span_id,
/// u64 LE each) to a request payload; the sender must also set
/// FrameHeader::kFlagTraceContext.
void append_trace_context(std::vector<std::byte>& payload,
                          const obs::TraceContext& ctx);

/// Read the trailer of a flagged payload. Returns the sender's context
/// ({trace_id, span_id, 0}) — pass it to obs::SpanScope to open a child
/// span. Throws NetError{kProtocol} when the payload is too short to hold
/// the trailer.
[[nodiscard]] obs::TraceContext read_trace_context(const std::byte* payload,
                                                   std::size_t size);

// --- envelope helpers -----------------------------------------------------
// Explicit little-endian scalars and u16-length-prefixed strings used for
// the request envelopes, independent of serial::Format.

void put_u16(std::vector<std::byte>& out, std::uint16_t v);
void put_u32(std::vector<std::byte>& out, std::uint32_t v);
void put_u64(std::vector<std::byte>& out, std::uint64_t v);
void put_string(std::vector<std::byte>& out, std::string_view s);

/// Sequential envelope reader over a payload. Throws NetError{kProtocol}
/// when a read runs past the end.
class EnvelopeReader {
 public:
  EnvelopeReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit EnvelopeReader(const std::vector<std::byte>& buf)
      : EnvelopeReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string string();

  /// Pointer/size of the unread tail (the serial-encoded argument bytes).
  [[nodiscard]] const std::byte* rest_data() const { return data_ + pos_; }
  [[nodiscard]] std::size_t rest_size() const { return size_ - pos_; }

 private:
  void need(std::size_t n) const;

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace apar::net
