#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apar/cache/sharded_lru.hpp"
#include "apar/cluster/fabric.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/net/connection_pool.hpp"
#include "apar/net/frame.hpp"
#include "apar/net/socket.hpp"

namespace apar::obs {
class Counter;
class Histogram;
}  // namespace apar::obs

namespace apar::net {

/// cluster::Middleware over real TCP sockets — the point of the subsystem:
/// DistributionAspect, FaultInjectingMiddleware and HybridMiddleware
/// compose over it unchanged, because the aspect seam only ever sees the
/// Middleware interface.
///
/// NodeId maps to Options::endpoints by index, so the aspect's placement
/// policies (round-robin, random) spread objects across real servers the
/// same way they spread them across simulated nodes. Name bindings and
/// lookups go to endpoints[0], the designated registry server (the RMI
/// registry analogue).
///
/// Failure semantics:
///   - Transport problems throw NetError (connect/timeout/closed/...).
///   - Server-side execution failures throw rpc::RpcError with the
///     server's message, exactly like the simulated middleware.
///   - Only LOOKUPS retry: they are idempotent, so a retry after a lost
///     reply cannot double-execute anything. Retries use bounded
///     exponential backoff and reconnect through the pool. Creations and
///     calls are NOT retried — a lost reply leaves "did it execute?"
///     ambiguous, and surfacing that as NetError is the honest answer.
class TcpMiddleware final : public cluster::Middleware {
 public:
  struct Options {
    /// Placement targets; NodeId n dispatches to endpoints[n]. Must be
    /// non-empty. endpoints[0] doubles as the name registry.
    std::vector<Endpoint> endpoints;
    serial::Format format = serial::Format::kCompact;
    /// Advertise one-way support. One-ways still read the server's empty
    /// ack frame, which keeps the connection state unambiguous and makes
    /// TcpFabric::drain() a no-op.
    bool one_way = true;
    std::chrono::milliseconds connect_deadline{2000};
    std::chrono::milliseconds io_deadline{5000};
    std::size_t max_lookup_retries = 3;
    std::chrono::milliseconds backoff_initial{10};
    std::chrono::milliseconds backoff_max{500};
    /// Cache positive registry lookups in a ShardedLru with this many
    /// entries (0 disables): a name is resolved over the wire once, every
    /// later lookup is answered locally. bind_name() through this
    /// middleware invalidates its own entry; a rebind by ANOTHER process
    /// is only seen once lookup_cache_ttl lapses, so set a TTL whenever
    /// several writers share the registry.
    std::size_t lookup_cache_entries = 0;
    std::chrono::milliseconds lookup_cache_ttl{0};  ///< 0 = no expiry
    std::string name = "TCP";
  };

  /// Wire-level accounting (frame bytes INCLUDING headers; the inherited
  /// MiddlewareStats counts payload bytes only, mirroring what the
  /// simulated middlewares charge). Copyable snapshot.
  struct NetCounters {
    std::uint64_t connects = 0;     ///< fresh dials
    std::uint64_t reconnects = 0;   ///< dials after the first, per endpoint
    std::uint64_t retries = 0;      ///< lookup retry attempts
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t wire_bytes_sent = 0;
    std::uint64_t wire_bytes_received = 0;
  };

  explicit TcpMiddleware(Options options);

  // --- Middleware interface ----------------------------------------------
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] serial::Format wire_format() const override {
    return options_.format;
  }
  [[nodiscard]] bool supports_one_way() const override {
    return options_.one_way;
  }
  [[nodiscard]] bool wire_transport() const override { return true; }

  cluster::RemoteHandle create(cluster::NodeId node,
                               std::string_view class_name,
                               std::vector<std::byte> ctor_args) override;
  std::vector<std::byte> invoke(const cluster::RemoteHandle& target,
                                std::string_view method,
                                std::vector<std::byte> args) override;
  void invoke_one_way(const cluster::RemoteHandle& target,
                      std::string_view method,
                      std::vector<std::byte> args) override;
  std::optional<cluster::RemoteHandle> lookup(std::string_view name) override;

  [[nodiscard]] const cluster::MiddlewareStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] const cluster::CostModel& costs() const override {
    return costs_;
  }

  // --- TCP-specific surface ----------------------------------------------

  /// Publish a binding on the registry server (endpoints[0]).
  void bind_name(std::string name, cluster::RemoteHandle handle);

  /// Fetch the node's kTelemetry snapshot: metrics-registry JSON plus
  /// server counters, optionally including (and optionally flushing) the
  /// node's tagged trace buffer. Returns the server's raw JSON string.
  [[nodiscard]] std::string telemetry(cluster::NodeId node,
                                      bool include_trace = false,
                                      bool flush_trace = false);

  [[nodiscard]] const std::vector<Endpoint>& endpoints() const {
    return options_.endpoints;
  }
  [[nodiscard]] NetCounters net_counters() const;
  [[nodiscard]] ConnectionPool& pool() { return pool_; }

  /// Lookup-cache traffic (hits mean registry round-trips not taken);
  /// null when Options::lookup_cache_entries is 0.
  [[nodiscard]] const cache::CacheStats* lookup_cache_stats() const {
    return lookup_cache_ ? &lookup_cache_->stats() : nullptr;
  }

 private:
  struct Exchange {
    FrameHeader header;
    std::vector<std::byte> payload;
  };

  /// One framed request/reply over a pooled connection. Throws NetError
  /// on transport failure (the connection is dropped, not returned) and
  /// rpc::RpcError when the server answered kReplyError. When
  /// obs::tracing_enabled(), opens a "net.<op>" wire span (child of the
  /// calling thread's context) and ships its identity in the frame's
  /// trace trailer so the server's span joins the caller's trace.
  Exchange roundtrip(std::size_t endpoint_index, FrameHeader::Op op,
                     std::vector<std::byte> payload);
  /// The raw frame exchange behind roundtrip(); `flags` goes into the
  /// header verbatim.
  Exchange exchange(std::size_t endpoint_index, FrameHeader::Op op,
                    std::vector<std::byte> payload, std::uint8_t flags);

  const Endpoint& endpoint_for(cluster::NodeId node) const;

  Options options_;
  std::string name_;
  cluster::CostModel costs_{};  ///< TCP costs are real; nothing is charged
  cluster::MiddlewareStats stats_;
  ConnectionPool pool_;
  /// Positive registry-lookup results, name -> handle; null when disabled.
  std::unique_ptr<cache::ShardedLru<std::string, cluster::RemoteHandle>>
      lookup_cache_;
  std::atomic<std::uint64_t> next_request_id_{1};
  /// Per-endpoint "ever dialed" flags: a dial after the first is a
  /// reconnect (the previous connection went away).
  std::unique_ptr<std::atomic<bool>[]> dialed_;

  struct AtomicNetCounters {
    std::atomic<std::uint64_t> connects{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> wire_bytes_sent{0};
    std::atomic<std::uint64_t> wire_bytes_received{0};
  };
  AtomicNetCounters net_;

  /// Per-endpoint registry mirrors, indexed like endpoints; empty unless
  /// obs::metrics_enabled() at construction. Labelled
  /// {"endpoint": "<host:port>"}.
  struct EndpointProbes {
    std::shared_ptr<obs::Counter> connects;
    std::shared_ptr<obs::Counter> reconnects;
    std::shared_ptr<obs::Counter> retries;
    std::shared_ptr<obs::Counter> bytes_sent;
    std::shared_ptr<obs::Counter> bytes_received;
    std::shared_ptr<obs::Histogram> rtt_us;
  };
  std::vector<EndpointProbes> probes_;
};

/// The distribution aspect's placement view over a set of TCP servers.
/// size() is how many endpoints exist, bind_name publishes to the
/// registry server, and drain() is a no-op because every one-way already
/// waited for its ack.
class TcpFabric final : public cluster::Fabric {
 public:
  explicit TcpFabric(TcpMiddleware& middleware) : middleware_(middleware) {}

  [[nodiscard]] std::size_t size() const override {
    return middleware_.endpoints().size();
  }
  void bind_name(std::string name, cluster::RemoteHandle handle) override {
    middleware_.bind_name(std::move(name), handle);
  }
  void drain() override {}

 private:
  TcpMiddleware& middleware_;
};

}  // namespace apar::net
