#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace apar::net {

/// Where a server lives. Host is resolved with getaddrinfo, so both
/// numeric addresses ("127.0.0.1") and names ("localhost") work.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    return a.host != b.host ? a.host < b.host : a.port < b.port;
  }

  [[nodiscard]] std::string str() const {
    return host + ":" + std::to_string(port);
  }
};

using Deadline = std::chrono::steady_clock::time_point;

/// Deadline `timeout` from now.
[[nodiscard]] Deadline deadline_after(std::chrono::milliseconds timeout);

/// RAII wrapper over one connected (or listening) socket fd. All sockets
/// are non-blocking; blocking semantics come from the deadline-driven
/// poll() loops in send_all/recv_exact below — a stuck peer therefore
/// surfaces as NetError{kTimeout} at the deadline instead of hanging the
/// calling thread forever.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// True if the connection is still usable for a fresh request: no
  /// unread bytes (a healthy idle connection is silent between requests)
  /// and no EOF/error pending. A restarted server's stale connections
  /// fail this check, which is how the pool avoids handing them out.
  [[nodiscard]] bool idle_and_healthy() const;

 private:
  int fd_ = -1;
};

/// Connect to `endpoint`, finishing before `deadline`. Throws
/// NetError{kConnect} on resolution/connection failure and
/// NetError{kTimeout} when the deadline expires first. The returned
/// socket has TCP_NODELAY set (frames are small; Nagle would serialize
/// the request/reply rhythm).
Socket dial(const Endpoint& endpoint, Deadline deadline);

/// Write all of `data`, finishing before `deadline`.
void send_all(Socket& socket, const std::byte* data, std::size_t size,
              Deadline deadline);

/// Read exactly `size` bytes into `out`, finishing before `deadline`.
/// EOF mid-read throws NetError{kClosed}.
void recv_exact(Socket& socket, std::byte* out, std::size_t size,
                Deadline deadline);

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port;
/// port() reports the actual one.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Raw listening descriptor, for event loops that poll it directly
  /// (src/net/reactor). The Listener keeps ownership.
  [[nodiscard]] int fd() const { return fd_.fd(); }

  /// Accept one connection, waiting at most `timeout` (0 = just poll).
  /// Returns an invalid Socket on timeout (so an accept loop can poll its
  /// stop flag, and a reactor can accept nonblockingly).
  Socket accept(std::chrono::milliseconds timeout);

  void close() { fd_.close(); }

 private:
  Socket fd_;
  std::uint16_t port_ = 0;
};

/// True when this environment can create and connect loopback TCP
/// sockets. Sandboxes without network namespaces make every net test
/// skip rather than fail.
bool loopback_available();

}  // namespace apar::net
