#pragma once

#include <stdexcept>
#include <string>

namespace apar::net {

/// Transport-layer failure taxonomy. Every socket-level problem a caller
/// can see surfaces as a NetError with a Kind, so tests and retry policy
/// can branch on WHAT failed (connect vs deadline vs peer-close vs
/// malformed frame) without parsing message text.
///
/// Application-level failures — the server executed the request and it
/// threw — are NOT NetErrors; they come back as rpc::RpcError carrying the
/// server's message, exactly like the simulated middleware.
class NetError : public std::runtime_error {
 public:
  enum class Kind {
    kConnect,   ///< could not establish a connection
    kTimeout,   ///< deadline expired while connecting, sending or receiving
    kClosed,    ///< peer closed the connection mid-exchange
    kProtocol,  ///< malformed frame (bad magic/version/length)
    kIo,        ///< other socket error (ECONNRESET, EPIPE, ...)
  };

  NetError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

  [[nodiscard]] static const char* kind_name(Kind kind) {
    switch (kind) {
      case Kind::kConnect: return "connect";
      case Kind::kTimeout: return "timeout";
      case Kind::kClosed: return "closed";
      case Kind::kProtocol: return "protocol";
      case Kind::kIo: return "io";
    }
    return "unknown";
  }

 private:
  Kind kind_;
};

}  // namespace apar::net
