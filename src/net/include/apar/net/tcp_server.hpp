#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "apar/cluster/dispatcher.hpp"
#include "apar/cluster/name_server.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "apar/net/frame.hpp"
#include "apar/net/socket.hpp"

namespace apar::net {

/// One TCP "machine": a loopback-or-LAN server hosting a
/// cluster::Dispatcher behind the frame protocol. This is the real-wire
/// counterpart of cluster::Node — both drive the SAME Dispatcher, so a
/// request does exactly the same thing whether it arrived on a simulated
/// mailbox or a socket.
///
/// Threading: one acceptor thread plus a concurrency::ThreadPool of
/// `workers` connection handlers. A connection occupies a worker until
/// the client disconnects (thread-per-connection), so at most `workers`
/// clients are served concurrently; additional connections queue in the
/// pool. Fine for the paper's scale (a handful of client threads), wrong
/// for C10K — documented in docs/networking.md.
class TcpServer {
 public:
  struct Options {
    std::uint16_t port = 0;      ///< 0 = pick an ephemeral port
    std::size_t workers = 4;     ///< concurrent connections served
    /// Per-frame I/O deadline once a frame has started arriving. Idle
    /// time between frames is unlimited (a quiet client is not an error).
    std::chrono::milliseconds io_deadline{5000};
    /// Dispatcher error-message prefix; default "tcp:<port>".
    std::string label;

    // --- chaos knobs (tests only) ---------------------------------------
    /// Close the connection instead of replying for the first N request
    /// frames — the reply is "lost", clients see NetError{kClosed}.
    std::uint64_t chaos_drop_frames = 0;
    /// Stall the first N replies by `chaos_stall_ms` — lets tests force a
    /// client-side deadline expiry deterministically.
    std::uint64_t chaos_stall_frames = 0;
    std::chrono::milliseconds chaos_stall_ms{0};
  };

  /// Byte/frame accounting, captured as a plain copyable snapshot.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t bytes_in = 0;    ///< header + payload, received
    std::uint64_t bytes_out = 0;   ///< header + payload, sent
    std::uint64_t protocol_errors = 0;
    std::uint64_t dispatch_errors = 0;  ///< requests answered kReplyError
    std::uint64_t chaos_dropped = 0;
    std::uint64_t chaos_stalled = 0;
  };

  explicit TcpServer(const cluster::rpc::Registry& registry)
      : TcpServer(registry, Options{}) {}
  TcpServer(const cluster::rpc::Registry& registry, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Actual listening port (useful with Options::port = 0).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  [[nodiscard]] cluster::Dispatcher& dispatcher() { return dispatcher_; }
  [[nodiscard]] cluster::NameServer& name_server() { return name_server_; }
  [[nodiscard]] Stats stats() const;

  /// Stop accepting, close the listener and join all handler threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void accept_loop();
  void serve_connection(Socket socket);
  /// Handle one request frame; returns false when the connection must
  /// close (chaos drop).
  bool handle_frame(Socket& socket, const FrameHeader& header,
                    const std::vector<std::byte>& payload);
  void send_frame(Socket& socket, FrameHeader header,
                  const std::vector<std::byte>& payload);
  /// kTelemetry reply body: node identity + server counters + the global
  /// metrics-registry JSON; tflags bit 0 adds the tagged trace buffer,
  /// bit 1 flushes (drains) it in the same exchange.
  [[nodiscard]] std::string telemetry_json(std::uint8_t tflags) const;

  Options options_;
  Listener listener_;
  std::chrono::steady_clock::time_point started_at_{
      std::chrono::steady_clock::now()};
  cluster::Dispatcher dispatcher_;
  cluster::NameServer name_server_;

  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> request_seq_{0};  ///< chaos decision index

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> dispatch_errors{0};
    std::atomic<std::uint64_t> chaos_dropped{0};
    std::atomic<std::uint64_t> chaos_stalled{0};
  };
  AtomicStats stats_;

  // Last members: workers_ and acceptor_ run code touching everything
  // above, so they must be destroyed (joined) first.
  std::unique_ptr<concurrency::ThreadPool> workers_;
  std::thread acceptor_;
};

}  // namespace apar::net
