#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "apar/cluster/dispatcher.hpp"
#include "apar/cluster/name_server.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "apar/net/frame.hpp"
#include "apar/net/reactor.hpp"
#include "apar/net/socket.hpp"

namespace apar::net {

/// One TCP "machine": a loopback-or-LAN server hosting a
/// cluster::Dispatcher behind the frame protocol. This is the real-wire
/// counterpart of cluster::Node — both drive the SAME Dispatcher, so a
/// request does exactly the same thing whether it arrived on a simulated
/// mailbox or a socket.
///
/// Two serving modes share one request path (process_request), so the
/// wire protocol — framing, trace trailers, kTelemetry, chaos knobs — is
/// byte-identical in both:
///
///   kThreadPerConnection (the paper's scale, the baseline): one acceptor
///   thread plus a ThreadPool of `workers` connection handlers. A
///   connection occupies a worker until the client disconnects, so at
///   most `workers` clients are served concurrently; additional
///   connections queue in the pool.
///
///   kReactor (the C10K answer): a single event-loop thread multiplexes
///   every connection (src/net/reactor — epoll, or poll via
///   Options::reactor.force_poll) and dispatches decoded requests into
///   the same ThreadPool, so `workers` bounds CPU concurrency while the
///   connection count is bounded only by Options::reactor.max_connections.
///   Adds write backpressure, idle timeouts, slow-reader eviction,
///   connection limits and graceful drain. docs/networking.md has the
///   architecture; tools/loadgen measures the difference.
class TcpServer {
 public:
  enum class Mode {
    kThreadPerConnection,
    kReactor,
  };

  struct Options {
    std::uint16_t port = 0;      ///< 0 = pick an ephemeral port
    std::size_t workers = 4;     ///< handler pool size (see Mode)
    Mode mode = Mode::kThreadPerConnection;
    /// Reactor-mode limits and timeouts; ignored in thread mode.
    Reactor::Options reactor;
    /// Per-frame I/O deadline once a frame has started arriving. Idle
    /// time between frames is unlimited (a quiet client is not an error).
    /// Thread mode only; the reactor's state machines never block, so
    /// its equivalents are reactor.idle_timeout/write_stall_timeout.
    std::chrono::milliseconds io_deadline{5000};
    /// Dispatcher error-message prefix; default "tcp:<port>".
    std::string label;

    // --- chaos knobs (tests only) ---------------------------------------
    /// Close the connection instead of replying for the first N request
    /// frames — the reply is "lost", clients see NetError{kClosed}.
    std::uint64_t chaos_drop_frames = 0;
    /// Stall the first N replies by `chaos_stall_ms` — lets tests force a
    /// client-side deadline expiry deterministically.
    std::uint64_t chaos_stall_frames = 0;
    std::chrono::milliseconds chaos_stall_ms{0};
  };

  /// Byte/frame accounting, captured as a plain copyable snapshot. In
  /// reactor mode the wire-side counters come from the event loop and
  /// the reactor-only fields (rejected, backpressure_pauses, idle_closed,
  /// slow_closed) become live; in thread mode those stay 0.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t bytes_in = 0;    ///< header + payload, received
    std::uint64_t bytes_out = 0;   ///< header + payload, sent
    std::uint64_t protocol_errors = 0;
    std::uint64_t dispatch_errors = 0;  ///< requests answered kReplyError
    std::uint64_t chaos_dropped = 0;
    std::uint64_t chaos_stalled = 0;
    std::uint64_t rejected = 0;             ///< over max_connections
    std::uint64_t backpressure_pauses = 0;  ///< read-pause transitions
    std::uint64_t idle_closed = 0;
    std::uint64_t slow_closed = 0;          ///< stalled-write evictions
  };

  explicit TcpServer(const cluster::rpc::Registry& registry)
      : TcpServer(registry, Options{}) {}
  TcpServer(const cluster::rpc::Registry& registry, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Actual listening port (useful with Options::port = 0).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  [[nodiscard]] cluster::Dispatcher& dispatcher() { return dispatcher_; }
  [[nodiscard]] cluster::NameServer& name_server() { return name_server_; }
  [[nodiscard]] Stats stats() const;
  /// Live connection count; only meaningful in reactor mode (0 in thread
  /// mode, which does not track it).
  [[nodiscard]] std::size_t open_connections() const;

  /// Stop accepting and shut down. Thread mode closes the listener and
  /// joins the handlers; reactor mode drains gracefully first (in-flight
  /// requests finish and queued replies flush, up to
  /// Options::reactor.drain_timeout). Idempotent; the destructor calls it.
  void stop();

 private:
  void accept_loop();
  void serve_connection(Socket socket);
  /// The mode-independent request path: chaos drop/stall decisions,
  /// serve-span tracing, dispatch, telemetry — everything between a
  /// decoded request frame and its encoded reply. Called from a
  /// connection handler (thread mode) or a pool worker (reactor mode).
  ReplyAction process_request(const FrameHeader& header,
                              std::vector<std::byte> payload);
  /// Handle one request frame; returns false when the connection must
  /// close (chaos drop).
  bool handle_frame(Socket& socket, const FrameHeader& header,
                    std::vector<std::byte> payload);
  void send_frame(Socket& socket, FrameHeader header,
                  const std::vector<std::byte>& payload);
  /// kTelemetry reply body: node identity + server counters + the global
  /// metrics-registry JSON; tflags bit 0 adds the tagged trace buffer,
  /// bit 1 flushes (drains) it in the same exchange.
  [[nodiscard]] std::string telemetry_json(std::uint8_t tflags) const;

  Options options_;
  Listener listener_;
  std::chrono::steady_clock::time_point started_at_{
      std::chrono::steady_clock::now()};
  cluster::Dispatcher dispatcher_;
  cluster::NameServer name_server_;

  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> request_seq_{0};  ///< chaos decision index

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> dispatch_errors{0};
    std::atomic<std::uint64_t> chaos_dropped{0};
    std::atomic<std::uint64_t> chaos_stalled{0};
  };
  AtomicStats stats_;

  // Last members: workers_, acceptor_ and reactor_ run code touching
  // everything above, so they must be destroyed (joined) first. stop()
  // tears them down in the safe order (reactor joined before the pool
  // drains, listener closed last).
  std::unique_ptr<concurrency::ThreadPool> workers_;
  std::thread acceptor_;
  std::unique_ptr<Reactor> reactor_;
};

}  // namespace apar::net
