#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "apar/net/frame.hpp"
#include "apar/net/socket.hpp"

namespace apar::net {

/// What the dispatch handler decided about one request frame: either a
/// reply to queue back on the connection, or (chaos only) an instruction
/// to close the connection without replying — the same "lost reply"
/// semantics TcpServer's thread-per-connection mode implements.
struct ReplyAction {
  bool drop = false;
  FrameHeader header;
  std::vector<std::byte> payload;
};

/// Single-threaded event loop serving many connections over the frame
/// protocol: nonblocking accept, per-connection incremental read state
/// machines, request dispatch into a shared work-stealing ThreadPool, and
/// ordered write-back with backpressure.
///
/// Threading model — one rule: ONLY the reactor thread touches connection
/// state. Pool workers run the handler and push the finished ReplyAction
/// onto a mutex-protected completion queue; a self-pipe wakes the loop,
/// which matches completions back to their connection by id and flushes
/// replies strictly in request arrival order (pipelined clients see
/// replies in the order they asked, no matter how the pool reordered the
/// work). Out-of-order completions park until their turn.
///
/// Backpressure: when a connection has `max_inflight` dispatched requests
/// or `max_outbound_bytes` of un-flushed reply bytes, the reactor stops
/// reading from it (drops read interest) until the client drains replies —
/// a slow consumer throttles itself instead of ballooning server memory.
/// Writes that make no progress for `write_stall_timeout` evict the
/// connection (slow-reader protection); connections idle longer than
/// `idle_timeout` are closed; accepts beyond `max_connections` are closed
/// immediately and counted as rejected.
///
/// The epoll backend (Linux) is level-triggered; `force_poll` selects the
/// portable poll(2) backend, which behaves identically and is exercised
/// by the test suite so the fallback never rots.
class Reactor {
 public:
  struct Options {
    std::size_t max_connections = 1024;
    /// Close connections with no traffic for this long (0 = never).
    std::chrono::milliseconds idle_timeout{0};
    /// Un-flushed reply bytes per connection before reads pause.
    std::size_t max_outbound_bytes = 1 << 20;
    /// Dispatched-but-unanswered requests per connection before reads
    /// pause (bounds worker-queue amplification from one pipelining
    /// client).
    std::size_t max_inflight = 64;
    /// Evict a connection whose pending writes make no progress this long.
    std::chrono::milliseconds write_stall_timeout{5000};
    /// stop() grace: how long to wait for in-flight requests to finish
    /// and queued replies to flush before force-closing.
    std::chrono::milliseconds drain_timeout{2000};
    /// Use the portable poll(2) backend even where epoll is available.
    bool force_poll = false;
    /// Test knob: SO_SNDBUF for accepted sockets (0 = kernel default);
    /// small values make slow-reader eviction deterministic.
    int sndbuf_bytes = 0;
  };

  /// Copyable snapshot of the loop's accounting.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  ///< closed at accept: over max_connections
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t backpressure_pauses = 0;  ///< read-pause transitions
    std::uint64_t idle_closed = 0;
    std::uint64_t slow_closed = 0;  ///< evicted for stalled writes
  };

  /// Runs on a pool worker with the decoded request; must not block on
  /// the requesting connection (it owns no socket).
  using Handler =
      std::function<ReplyAction(const FrameHeader&, std::vector<std::byte>)>;

  /// The listener must outlive the reactor and stay open until stop()
  /// returns; `pool` executes handlers and is shared with the rest of the
  /// server. `label` names the APAR_METRICS probes ({"server", label}).
  Reactor(Listener& listener, concurrency::ThreadPool& pool, Handler handler,
          Options options, std::string label);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Graceful drain: stop accepting, stop reading, let in-flight requests
  /// finish and queued replies flush (up to drain_timeout), close
  /// everything, join the loop thread. Idempotent.
  void stop();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t open_connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Analysis-side model of the reactor's dispatch path: every served
/// method of T runs on an arbitrary ThreadPool worker, concurrently with
/// any other request — concurrency injected by the transport rather than
/// by a concurrency aspect, which the declared-effects race pass
/// (`apar-analyze --effects`) must see. Each serve_method registers a
/// pass-through advice just outside the concurrency layer marked
/// mark_spawns_concurrency() (unconfined: pool workers, not a
/// target-confined helper thread), so a weave is only clean when some
/// aspect's monitors still cover every racing effect pair — the
/// composition gate for serving a weave behind Mode::kReactor.
template <class T>
class ReactorIngressAspect : public aop::Aspect {
 public:
  explicit ReactorIngressAspect(std::string name = "ReactorIngress")
      : Aspect(std::move(name)) {}

  template <auto M>
  ReactorIngressAspect& serve_method() {
    around_method<M>(aop::order::kConcurrencyAsync - 10, aop::Scope::any(),
                     [](auto& inv) { return inv.proceed(); })
        .mark_spawns_concurrency();
    return *this;
  }
};

}  // namespace apar::net
