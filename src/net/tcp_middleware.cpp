#include "apar/net/tcp_middleware.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "apar/cluster/rpc.hpp"
#include "apar/net/error.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"

namespace apar::net {

TcpMiddleware::TcpMiddleware(Options options)
    : options_(std::move(options)), name_(options_.name) {
  if (options_.endpoints.empty())
    throw NetError(NetError::Kind::kConnect,
                   "TcpMiddleware needs at least one endpoint");
  dialed_ = std::make_unique<std::atomic<bool>[]>(options_.endpoints.size());
  if (options_.lookup_cache_entries > 0) {
    cache::ShardedLru<std::string, cluster::RemoteHandle>::Options co;
    co.shards = 4;
    co.max_entries = options_.lookup_cache_entries;
    co.ttl = options_.lookup_cache_ttl;
    co.name = name_ + ".lookup";
    lookup_cache_ = std::make_unique<
        cache::ShardedLru<std::string, cluster::RemoteHandle>>(std::move(co));
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    probes_.reserve(options_.endpoints.size());
    for (const Endpoint& ep : options_.endpoints) {
      const obs::Labels labels{{"endpoint", ep.str()}};
      EndpointProbes p;
      p.connects = reg.counter("net.connects", labels);
      p.reconnects = reg.counter("net.reconnects", labels);
      p.retries = reg.counter("net.retries", labels);
      p.bytes_sent = reg.counter("net.bytes_sent", labels);
      p.bytes_received = reg.counter("net.bytes_received", labels);
      p.rtt_us = reg.histogram("net.rtt_us", labels);
      probes_.push_back(std::move(p));
    }
  }
}

const Endpoint& TcpMiddleware::endpoint_for(cluster::NodeId node) const {
  if (node >= options_.endpoints.size())
    throw NetError(NetError::Kind::kConnect,
                   "no endpoint for node " + std::to_string(node) + " (" +
                       std::to_string(options_.endpoints.size()) +
                       " endpoints configured)");
  return options_.endpoints[node];
}

TcpMiddleware::Exchange TcpMiddleware::roundtrip(
    std::size_t endpoint_index, FrameHeader::Op op,
    std::vector<std::byte> payload) {
  if (!obs::tracing_enabled())
    return exchange(endpoint_index, op, std::move(payload), 0);

  // Wire span: a child of whatever the calling thread is doing, shipped in
  // the frame trailer so the server-side span parents to it. The span
  // always closes — kExit on a reply (even kReplyError: the wire worked),
  // kError when the transport itself failed.
  const obs::TraceContext wire_ctx =
      obs::TraceContext::child_of(obs::current_context());
  append_trace_context(payload, wire_ctx);
  const std::string sig = "net." + std::string(op_name(op));
  auto& tracer = *obs::Tracer::global();
  tracer.record({std::chrono::steady_clock::now(),
                 std::this_thread::get_id(), sig, nullptr,
                 obs::TraceEvent::Phase::kEnter, wire_ctx});
  try {
    Exchange ex = exchange(endpoint_index, op, std::move(payload),
                           FrameHeader::kFlagTraceContext);
    tracer.record({std::chrono::steady_clock::now(),
                   std::this_thread::get_id(), sig, nullptr,
                   obs::TraceEvent::Phase::kExit, wire_ctx});
    return ex;
  } catch (const cluster::rpc::RpcError&) {
    tracer.record({std::chrono::steady_clock::now(),
                   std::this_thread::get_id(), sig, nullptr,
                   obs::TraceEvent::Phase::kExit, wire_ctx});
    throw;
  } catch (...) {
    tracer.record({std::chrono::steady_clock::now(),
                   std::this_thread::get_id(), sig, nullptr,
                   obs::TraceEvent::Phase::kError, wire_ctx});
    throw;
  }
}

TcpMiddleware::Exchange TcpMiddleware::exchange(
    std::size_t endpoint_index, FrameHeader::Op op,
    std::vector<std::byte> payload, std::uint8_t flags) {
  const Endpoint& ep = options_.endpoints[endpoint_index];
  EndpointProbes* probe =
      probes_.empty() ? nullptr : &probes_[endpoint_index];
  const auto started = probe ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

  auto checkout =
      pool_.acquire(ep, deadline_after(options_.connect_deadline));
  if (!checkout.reused) {
    net_.connects.fetch_add(1, std::memory_order_relaxed);
    if (probe) probe->connects->add(1);
    if (dialed_[endpoint_index].exchange(true, std::memory_order_relaxed)) {
      net_.reconnects.fetch_add(1, std::memory_order_relaxed);
      if (probe) probe->reconnects->add(1);
    }
  }
  Socket socket = std::move(checkout.socket);

  FrameHeader header;
  header.format = options_.format;
  header.op = op;
  header.flags = flags;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const auto header_bytes = encode_header(header);

  FrameHeader reply_header;
  std::vector<std::byte> reply_payload;
  try {
    const Deadline deadline = deadline_after(options_.io_deadline);
    send_all(socket, header_bytes.data(), header_bytes.size(), deadline);
    if (!payload.empty())
      send_all(socket, payload.data(), payload.size(), deadline);
    net_.frames_sent.fetch_add(1, std::memory_order_relaxed);
    net_.wire_bytes_sent.fetch_add(header_bytes.size() + payload.size(),
                                   std::memory_order_relaxed);
    if (probe) probe->bytes_sent->add(header_bytes.size() + payload.size());

    std::array<std::byte, FrameHeader::kSize> reply_bytes;
    recv_exact(socket, reply_bytes.data(), reply_bytes.size(), deadline);
    reply_header = decode_header(reply_bytes.data(), reply_bytes.size());
    if (reply_header.request_id != header.request_id)
      throw NetError(NetError::Kind::kProtocol,
                     "reply correlates to request " +
                         std::to_string(reply_header.request_id) +
                         ", expected " + std::to_string(header.request_id));
    reply_payload.resize(reply_header.payload_len);
    if (reply_header.payload_len > 0)
      recv_exact(socket, reply_payload.data(), reply_payload.size(),
                 deadline);
    net_.frames_received.fetch_add(1, std::memory_order_relaxed);
    net_.wire_bytes_received.fetch_add(
        reply_bytes.size() + reply_payload.size(), std::memory_order_relaxed);
    if (probe) {
      probe->bytes_received->add(reply_bytes.size() + reply_payload.size());
      probe->rtt_us->record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count() /
          1000.0);
    }
  } catch (const NetError&) {
    // The failing socket itself is dropped by unwinding. When it was a
    // REUSED connection, its idle siblings were dialed to the same server
    // era and are presumed equally stale (drained/restarted server whose
    // half-open sockets still pass the health poll) — evict them so the
    // next acquire dials the new era instead of burning one timeout per
    // stale socket.
    if (checkout.reused) pool_.evict(ep);
    throw;
  }

  // A complete exchange happened, so the connection is clean — reusable
  // even when the server answered with an application error.
  pool_.give_back(ep, std::move(socket));

  if (reply_header.op == FrameHeader::Op::kReplyError) {
    std::string message(reply_payload.size(), '\0');
    for (std::size_t i = 0; i < reply_payload.size(); ++i)
      message[i] =
          static_cast<char>(std::to_integer<std::uint8_t>(reply_payload[i]));
    throw cluster::rpc::RpcError(message);
  }
  if (reply_header.op != FrameHeader::Op::kReplyOk)
    throw NetError(NetError::Kind::kProtocol,
                   "unexpected reply op " +
                       std::to_string(static_cast<int>(reply_header.op)));
  return Exchange{reply_header, std::move(reply_payload)};
}

cluster::RemoteHandle TcpMiddleware::create(cluster::NodeId node,
                                            std::string_view class_name,
                                            std::vector<std::byte> ctor_args) {
  endpoint_for(node);
  std::vector<std::byte> payload;
  put_string(payload, class_name);
  payload.insert(payload.end(), ctor_args.begin(), ctor_args.end());

  stats_.creates.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  Exchange ex = roundtrip(node, FrameHeader::Op::kCreate, std::move(payload));
  stats_.bytes_received.fetch_add(ex.payload.size(),
                                  std::memory_order_relaxed);
  EnvelopeReader env(ex.payload);
  return cluster::RemoteHandle{node, env.u64()};
}

std::vector<std::byte> TcpMiddleware::invoke(
    const cluster::RemoteHandle& target, std::string_view method,
    std::vector<std::byte> args) {
  endpoint_for(target.node);
  std::vector<std::byte> payload;
  put_u64(payload, target.object);
  put_string(payload, method);
  payload.insert(payload.end(), args.begin(), args.end());

  stats_.sync_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  Exchange ex =
      roundtrip(target.node, FrameHeader::Op::kCall, std::move(payload));
  stats_.bytes_received.fetch_add(ex.payload.size(),
                                  std::memory_order_relaxed);
  return std::move(ex.payload);
}

void TcpMiddleware::invoke_one_way(const cluster::RemoteHandle& target,
                                   std::string_view method,
                                   std::vector<std::byte> args) {
  if (!options_.one_way) {
    // Degrade like RMI: a synchronous call whose reply is discarded.
    (void)invoke(target, method, std::move(args));
    return;
  }
  endpoint_for(target.node);
  std::vector<std::byte> payload;
  put_u64(payload, target.object);
  put_string(payload, method);
  payload.insert(payload.end(), args.begin(), args.end());

  stats_.one_way_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  Exchange ex =
      roundtrip(target.node, FrameHeader::Op::kOneWay, std::move(payload));
  // The ack is an empty frame; counting its (zero) payload keeps the
  // both-directions invariant literal.
  stats_.bytes_received.fetch_add(ex.payload.size(),
                                  std::memory_order_relaxed);
}

std::optional<cluster::RemoteHandle> TcpMiddleware::lookup(
    std::string_view name) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);

  // A cached positive binding answers without touching the wire at all —
  // no frame, no bytes, no registry contention.
  if (lookup_cache_) {
    if (auto cached = lookup_cache_->get(std::string(name))) return *cached;
  }

  auto backoff = options_.backoff_initial;
  for (std::size_t attempt = 0;; ++attempt) {
    std::vector<std::byte> payload;
    put_string(payload, name);
    try {
      stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
      Exchange ex =
          roundtrip(0, FrameHeader::Op::kLookup, std::move(payload));
      stats_.bytes_received.fetch_add(ex.payload.size(),
                                      std::memory_order_relaxed);
      EnvelopeReader env(ex.payload);
      const bool found = env.u8() != 0;
      cluster::RemoteHandle handle;
      handle.node = env.u32();
      handle.object = env.u64();
      if (!found) return std::nullopt;
      // Only positive results are cached: a miss may be a racing bind,
      // and re-asking is cheap relative to wrongly remembering absence.
      if (lookup_cache_) lookup_cache_->put(std::string(name), handle);
      return handle;
    } catch (const NetError& e) {
      // Protocol corruption is not transient, and running out of retry
      // budget means the caller gets the real failure.
      if (e.kind() == NetError::Kind::kProtocol ||
          attempt >= options_.max_lookup_retries)
        throw;
      net_.retries.fetch_add(1, std::memory_order_relaxed);
      if (!probes_.empty()) probes_[0].retries->add(1);
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, options_.backoff_max);
    }
  }
}

void TcpMiddleware::bind_name(std::string name,
                              cluster::RemoteHandle handle) {
  std::vector<std::byte> payload;
  put_string(payload, name);
  put_u32(payload, handle.node);
  put_u64(payload, handle.object);
  (void)roundtrip(0, FrameHeader::Op::kBind, std::move(payload));
  // This writer's own rebind must be visible to its next lookup.
  if (lookup_cache_) lookup_cache_->erase(name);
}

std::string TcpMiddleware::telemetry(cluster::NodeId node, bool include_trace,
                                     bool flush_trace) {
  endpoint_for(node);
  std::vector<std::byte> payload;
  std::uint8_t tflags = 0;
  if (include_trace || flush_trace) tflags |= 0x01;
  if (flush_trace) tflags |= 0x02;
  payload.push_back(static_cast<std::byte>(tflags));
  Exchange ex = roundtrip(node, FrameHeader::Op::kTelemetry,
                          std::move(payload));
  std::string json(ex.payload.size(), '\0');
  for (std::size_t i = 0; i < ex.payload.size(); ++i)
    json[i] = static_cast<char>(std::to_integer<std::uint8_t>(ex.payload[i]));
  return json;
}

TcpMiddleware::NetCounters TcpMiddleware::net_counters() const {
  NetCounters c;
  c.connects = net_.connects.load(std::memory_order_relaxed);
  c.reconnects = net_.reconnects.load(std::memory_order_relaxed);
  c.retries = net_.retries.load(std::memory_order_relaxed);
  c.frames_sent = net_.frames_sent.load(std::memory_order_relaxed);
  c.frames_received = net_.frames_received.load(std::memory_order_relaxed);
  c.wire_bytes_sent = net_.wire_bytes_sent.load(std::memory_order_relaxed);
  c.wire_bytes_received =
      net_.wire_bytes_received.load(std::memory_order_relaxed);
  return c;
}

}  // namespace apar::net
