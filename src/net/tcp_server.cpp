#include "apar/net/tcp_server.hpp"

#include <poll.h>
#include <unistd.h>

#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "apar/common/json.hpp"
#include "apar/common/log.hpp"
#include "apar/net/error.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"
#include "apar/serial/archive.hpp"

namespace apar::net {

namespace {

std::vector<std::byte> message_bytes(const std::string& text) {
  std::vector<std::byte> out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i)
    out[i] = static_cast<std::byte>(text[i]);
  return out;
}

}  // namespace

TcpServer::TcpServer(const cluster::rpc::Registry& registry, Options options)
    : options_(std::move(options)),
      listener_(options_.port),
      dispatcher_(registry, options_.label.empty()
                                ? "tcp:" + std::to_string(listener_.port())
                                : options_.label) {
  if (options_.workers == 0) options_.workers = 1;
  workers_ = std::make_unique<concurrency::ThreadPool>(options_.workers);
  if (options_.mode == Mode::kReactor) {
    reactor_ = std::make_unique<Reactor>(
        listener_, *workers_,
        [this](const FrameHeader& header, std::vector<std::byte> payload) {
          return process_request(header, std::move(payload));
        },
        options_.reactor, dispatcher_.label());
  } else {
    acceptor_ = std::thread([this] { accept_loop(); });
  }
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopped_.exchange(true)) return;
  if (reactor_) {
    // Graceful drain first (joins the loop thread), THEN drain the pool:
    // stragglers the reactor gave up waiting for finish into the shared
    // completion queue, which outlives the reactor, and are discarded.
    reactor_->stop();
    workers_.reset();
    listener_.close();
    return;
  }
  // The acceptor polls in 100ms chunks and re-checks stopped_, so it can
  // be joined without touching the listener; closing the fd only after
  // the join keeps it single-threaded (closing it out from under the
  // poll is a data race).
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  workers_.reset();  // drains queued connections (they exit on stopped_)
}

TcpServer::Stats TcpServer::stats() const {
  Stats s;
  s.accepted = stats_.accepted.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.dispatch_errors = stats_.dispatch_errors.load(std::memory_order_relaxed);
  s.chaos_dropped = stats_.chaos_dropped.load(std::memory_order_relaxed);
  s.chaos_stalled = stats_.chaos_stalled.load(std::memory_order_relaxed);
  if (reactor_) {
    // The event loop owns the wire in reactor mode; its counters are the
    // server's. The thread-mode atomics above stay 0 for these fields.
    const Reactor::Stats r = reactor_->stats();
    s.accepted += r.accepted;
    s.frames_in += r.frames_in;
    s.frames_out += r.frames_out;
    s.bytes_in += r.bytes_in;
    s.bytes_out += r.bytes_out;
    s.protocol_errors += r.protocol_errors;
    s.rejected = r.rejected;
    s.backpressure_pauses = r.backpressure_pauses;
    s.idle_closed = r.idle_closed;
    s.slow_closed = r.slow_closed;
  }
  return s;
}

std::size_t TcpServer::open_connections() const {
  return reactor_ ? reactor_->open_connections() : 0;
}

void TcpServer::accept_loop() {
  while (!stopped_.load(std::memory_order_relaxed)) {
    Socket client = listener_.accept(std::chrono::milliseconds(100));
    if (!client.valid()) continue;
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    auto shared = std::make_shared<Socket>(std::move(client));
    try {
      workers_->post([this, shared] {
        serve_connection(std::move(*shared));
      });
    } catch (...) {
      // Pool shutting down: the accepted connection just closes.
    }
  }
}

void TcpServer::serve_connection(Socket socket) {
  std::array<std::byte, FrameHeader::kSize> header_bytes;
  while (!stopped_.load(std::memory_order_relaxed)) {
    // Idle wait between frames: unbounded, but chunked so stop() is
    // honoured promptly.
    pollfd pfd{socket.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) return;
    if (rc == 0) continue;

    try {
      const Deadline deadline = deadline_after(options_.io_deadline);
      recv_exact(socket, header_bytes.data(), header_bytes.size(), deadline);
      const FrameHeader header =
          decode_header(header_bytes.data(), header_bytes.size());
      std::vector<std::byte> payload(header.payload_len);
      if (header.payload_len > 0)
        recv_exact(socket, payload.data(), payload.size(), deadline);
      stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_in.fetch_add(FrameHeader::kSize + payload.size(),
                                std::memory_order_relaxed);
      if (!handle_frame(socket, header, std::move(payload))) return;
    } catch (const NetError& e) {
      // kClosed on the header boundary is a normal disconnect; anything
      // else means the stream cannot be trusted — drop the connection
      // (frame sync is lost, there is no way to answer reliably).
      if (e.kind() == NetError::Kind::kProtocol)
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    } catch (...) {
      return;
    }
  }
}

bool TcpServer::handle_frame(Socket& socket, const FrameHeader& header,
                             std::vector<std::byte> payload) {
  ReplyAction action = process_request(header, std::move(payload));
  if (action.drop) return false;  // chaos: close without replying
  send_frame(socket, action.header, action.payload);
  return true;
}

ReplyAction TcpServer::process_request(const FrameHeader& header,
                                       std::vector<std::byte> payload) {
  ReplyAction action;
  const std::uint64_t seq =
      request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seq <= options_.chaos_drop_frames) {
    stats_.chaos_dropped.fetch_add(1, std::memory_order_relaxed);
    action.drop = true;  // "lose" the request: close without replying
    return action;
  }

  FrameHeader& reply_header = action.header;
  reply_header.format = header.format;
  reply_header.request_id = header.request_id;
  std::vector<std::byte>& reply = action.payload;

  // Serve span: child of the caller's wire span when the frame carries a
  // trace trailer, a fresh root otherwise. Installed around the dispatch
  // so server-side aspects and pool tasks parent to this request. The
  // boundary events are recorded after the fact with the saved t0 —
  // spans() orders by timestamp, so nesting renders correctly.
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<obs::SpanScope> span;
  std::string span_sig = "serve." + std::string(op_name(header.op));
  bool failed = false;

  try {
    std::size_t body_size = payload.size();
    if (header.flags & FrameHeader::kFlagTraceContext) {
      const obs::TraceContext remote =
          read_trace_context(payload.data(), payload.size());
      body_size -= FrameHeader::kTraceContextSize;
      if (obs::tracing_enabled()) span.emplace(remote);
    } else if (obs::tracing_enabled() &&
               header.op != FrameHeader::Op::kTelemetry) {
      // Untraced peers still get (root) serve spans — except for bare
      // telemetry polls: the observability plane must not fill a traced
      // server's ring with its own scrape traffic.
      span.emplace(obs::current_context());
    }
    EnvelopeReader env(payload.data(), body_size);
    switch (header.op) {
      case FrameHeader::Op::kCreate: {
        const std::string class_name = env.string();
        serial::Reader args(env.rest_data(), env.rest_size(), header.format);
        const cluster::ObjectId oid = dispatcher_.create(class_name, args);
        put_u64(reply, oid);
        break;
      }
      case FrameHeader::Op::kCall:
      case FrameHeader::Op::kOneWay: {
        const cluster::ObjectId oid = env.u64();
        const std::string method = env.string();
        span_sig = "serve." + method;
        serial::Reader args(env.rest_data(), env.rest_size(), header.format);
        auto out = dispatcher_.call(oid, method, args, header.format);
        // One-way acks are empty: the client charged the call as
        // fire-and-forget, so no reply payload travels back.
        if (header.op == FrameHeader::Op::kCall) reply = std::move(out);
        break;
      }
      case FrameHeader::Op::kLookup: {
        const std::string name = env.string();
        const auto handle = name_server_.lookup(name);
        reply.push_back(static_cast<std::byte>(handle ? 1 : 0));
        put_u32(reply, handle ? handle->node : 0);
        put_u64(reply, handle ? handle->object : 0);
        break;
      }
      case FrameHeader::Op::kBind: {
        std::string name = env.string();
        cluster::RemoteHandle handle;
        handle.node = env.u32();
        handle.object = env.u64();
        name_server_.bind(std::move(name), handle);
        break;
      }
      case FrameHeader::Op::kTelemetry: {
        const std::uint8_t tflags = env.rest_size() > 0 ? env.u8() : 0;
        reply = message_bytes(telemetry_json(tflags));
        break;
      }
      default:
        throw NetError(NetError::Kind::kProtocol,
                       "unexpected op " +
                           std::to_string(static_cast<int>(header.op)) +
                           " on server");
    }
    reply_header.op = FrameHeader::Op::kReplyOk;
  } catch (const std::exception& e) {
    APAR_DEBUG("net") << dispatcher_.label() << " request failed: "
                      << e.what();
    stats_.dispatch_errors.fetch_add(1, std::memory_order_relaxed);
    reply_header.op = FrameHeader::Op::kReplyError;
    reply = message_bytes(e.what());
    failed = true;
  }

  if (span) {
    auto& tracer = *obs::Tracer::global();
    const auto tid = std::this_thread::get_id();
    tracer.record({t0, tid, span_sig, nullptr,
                   obs::TraceEvent::Phase::kEnter, span->context()});
    tracer.record({std::chrono::steady_clock::now(), tid, span_sig, nullptr,
                   failed ? obs::TraceEvent::Phase::kError
                          : obs::TraceEvent::Phase::kExit,
                   span->context()});
    span.reset();  // restore the worker's ambient context before the reply
  }

  if (seq <= options_.chaos_stall_frames &&
      options_.chaos_stall_ms.count() > 0) {
    stats_.chaos_stalled.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(options_.chaos_stall_ms);
  }

  return action;
}

std::string TcpServer::telemetry_json(std::uint8_t tflags) const {
  const Stats s = stats();
  const auto uptime = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - started_at_)
                          .count();
  std::ostringstream os;
  os << "{\"node\":\"" << common::json_escape(dispatcher_.label()) << "\""
     << ",\"pid\":" << ::getpid()
     << ",\"port\":" << listener_.port()
     << ",\"uptime_us\":" << uptime
     << ",\"server\":{"
     << "\"accepted\":" << s.accepted
     << ",\"frames_in\":" << s.frames_in
     << ",\"frames_out\":" << s.frames_out
     << ",\"bytes_in\":" << s.bytes_in
     << ",\"bytes_out\":" << s.bytes_out
     << ",\"protocol_errors\":" << s.protocol_errors
     << ",\"dispatch_errors\":" << s.dispatch_errors
     << "}"
     << ",\"metrics\":" << obs::MetricsRegistry::global().to_json();
  if (tflags & 0x01) {
    auto& tracer = *obs::Tracer::global();
    // Flush (bit 1) drains atomically so repeated pollers never see the
    // same span twice; a plain include leaves the ring intact.
    std::vector<obs::TraceEvent> events =
        (tflags & 0x02) ? tracer.take_events() : tracer.events();
    os << ",\"trace\":{\"tag\":\""
       << common::json_escape(dispatcher_.label()) << "\""
       << ",\"dropped\":" << tracer.dropped_events()
       << ",\"events\":"
       << obs::Tracer::chrome_trace_json_of(std::move(events), ::getpid(),
                                            dispatcher_.label())
       << "}";
  }
  os << "}";
  return os.str();
}

void TcpServer::send_frame(Socket& socket, FrameHeader header,
                           const std::vector<std::byte>& payload) {
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  const auto bytes = encode_header(header);
  const Deadline deadline = deadline_after(options_.io_deadline);
  send_all(socket, bytes.data(), bytes.size(), deadline);
  if (!payload.empty())
    send_all(socket, payload.data(), payload.size(), deadline);
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(bytes.size() + payload.size(),
                             std::memory_order_relaxed);
}

}  // namespace apar::net
