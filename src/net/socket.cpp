#include "apar/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "apar/net/error.hpp"

namespace apar::net {

namespace {

[[noreturn]] void throw_errno(NetError::Kind kind, const std::string& what) {
  throw NetError(kind, what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno(NetError::Kind::kIo, "fcntl(O_NONBLOCK)");
}

/// Milliseconds until `deadline`, clamped to >= 0; throws kTimeout when
/// already past.
int remaining_ms(Deadline deadline, const char* doing) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0)
    throw NetError(NetError::Kind::kTimeout,
                   std::string("deadline expired while ") + doing);
  // poll() takes an int; a deadline years away must not overflow it.
  return static_cast<int>(std::min<long long>(left.count(), 1 << 30));
}

/// Wait until `fd` is ready for `events` or the deadline passes.
void wait_ready(int fd, short events, Deadline deadline, const char* doing) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline, doing));
    if (rc > 0) return;
    if (rc == 0)
      throw NetError(NetError::Kind::kTimeout,
                     std::string("deadline expired while ") + doing);
    if (errno == EINTR) continue;
    throw_errno(NetError::Kind::kIo, "poll");
  }
}

}  // namespace

Deadline deadline_after(std::chrono::milliseconds timeout) {
  return std::chrono::steady_clock::now() + timeout;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::idle_and_healthy() const {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) return false;
  // Readable while idle means either buffered stray bytes or (most
  // commonly) an EOF from a peer that went away; both disqualify reuse.
  return rc == 0;
}

Socket dial(const Endpoint& endpoint, Deadline deadline) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int gai = ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints,
                                &res);
  if (gai != 0)
    throw NetError(NetError::Kind::kConnect,
                   "cannot resolve " + endpoint.str() + ": " +
                       ::gai_strerror(gai));

  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    Socket socket(fd);
    try {
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        ::freeaddrinfo(res);
        return socket;
      }
      if (errno != EINPROGRESS) {
        last_error = std::strerror(errno);
        continue;
      }
      wait_ready(fd, POLLOUT, deadline, "connecting");
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
        last_error = std::strerror(err != 0 ? err : errno);
        continue;
      }
      ::freeaddrinfo(res);
      return socket;
    } catch (const NetError& e) {
      if (e.kind() == NetError::Kind::kTimeout) {
        ::freeaddrinfo(res);
        throw;
      }
      last_error = e.what();
    }
  }
  ::freeaddrinfo(res);
  throw NetError(NetError::Kind::kConnect,
                 "cannot connect to " + endpoint.str() + ": " + last_error);
}

void send_all(Socket& socket, const std::byte* data, std::size_t size,
              Deadline deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(socket.fd(), data + sent, size - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(socket.fd(), POLLOUT, deadline, "sending");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
      throw NetError(NetError::Kind::kClosed,
                     "peer closed connection while sending");
    throw_errno(NetError::Kind::kIo, "send");
  }
}

void recv_exact(Socket& socket, std::byte* out, std::size_t size,
                Deadline deadline) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(socket.fd(), out + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      throw NetError(NetError::Kind::kClosed,
                     "peer closed connection after " + std::to_string(got) +
                         " of " + std::to_string(size) + " bytes");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(socket.fd(), POLLIN, deadline, "receiving");
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET)
      throw NetError(NetError::Kind::kClosed,
                     "connection reset while receiving");
    throw_errno(NetError::Kind::kIo, "recv");
  }
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(NetError::Kind::kIo, "socket");
  fd_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    throw_errno(NetError::Kind::kIo, "bind 127.0.0.1:" + std::to_string(port));
  if (::listen(fd, 64) < 0) throw_errno(NetError::Kind::kIo, "listen");
  set_nonblocking(fd);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno(NetError::Kind::kIo, "getsockname");
  port_ = ::ntohs(addr.sin_port);
}

Socket Listener::accept(std::chrono::milliseconds timeout) {
  pollfd pfd{fd_.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc <= 0) return Socket{};
  const int client = ::accept(fd_.fd(), nullptr, nullptr);
  if (client < 0) return Socket{};
  Socket socket(client);
  set_nonblocking(client);
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

bool loopback_available() {
  static const bool available = [] {
    try {
      Listener listener(0);
      Socket client = dial({"127.0.0.1", listener.port()},
                           deadline_after(std::chrono::milliseconds(500)));
      return client.valid();
    } catch (...) {
      return false;
    }
  }();
  return available;
}

}  // namespace apar::net
