#include "apar/net/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <array>
#include <atomic>
#include <cerrno>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "apar/common/log.hpp"
#include "apar/net/error.hpp"
#include "apar/obs/metrics.hpp"

namespace apar::net {

namespace {

/// One readiness report from a poller backend.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Backend-neutral readiness interface. Both implementations are
/// level-triggered: a fd with unread bytes (or writable space) keeps
/// reporting ready, so the loop never needs to drain a fd exhaustively
/// before returning to wait().
class Poller {
 public:
  virtual ~Poller() = default;
  virtual void add(int fd, bool read, bool write) = 0;
  virtual void update(int fd, bool read, bool write) = 0;
  virtual void remove(int fd) = 0;
  virtual void wait(std::vector<PollEvent>& out, int timeout_ms) = 0;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (ep_ < 0)
      throw NetError(NetError::Kind::kIo, "epoll_create1 failed");
  }
  ~EpollPoller() override { ::close(ep_); }

  void add(int fd, bool read, bool write) override { ctl(EPOLL_CTL_ADD, fd, read, write); }
  void update(int fd, bool read, bool write) override { ctl(EPOLL_CTL_MOD, fd, read, write); }
  void remove(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(std::vector<PollEvent>& out, int timeout_ms) override {
    out.clear();
    epoll_event events[64];
    const int n = ::epoll_wait(ep_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    if (::epoll_ctl(ep_, op, fd, &ev) < 0)
      throw NetError(NetError::Kind::kIo, "epoll_ctl failed");
  }

  int ep_;
};
#endif

/// Portable fallback: a pollfd array rebuilt incrementally. O(n) per
/// wait, which is fine for the connection counts the fallback targets.
class PollPoller final : public Poller {
 public:
  void add(int fd, bool read, bool write) override {
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, events_of(read, write), 0});
  }
  void update(int fd, bool read, bool write) override {
    fds_[index_.at(fd)].events = events_of(read, write);
  }
  void remove(int fd) override {
    const std::size_t i = index_.at(fd);
    index_.erase(fd);
    if (i + 1 != fds_.size()) {
      fds_[i] = fds_.back();
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
  }

  void wait(std::vector<PollEvent>& out, int timeout_ms) override {
    out.clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  static short events_of(bool read, bool write) {
    short ev = 0;
    if (read) ev |= POLLIN;
    if (write) ev |= POLLOUT;
    return ev;
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

std::unique_ptr<Poller> make_poller(bool force_poll) {
#ifdef __linux__
  if (!force_poll) return std::make_unique<EpollPoller>();
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// --- completion plumbing ----------------------------------------------------

/// Finished handler results travelling from pool workers back to the
/// loop. Workers hold the queue through a shared_ptr, so a worker that
/// outlives the reactor (stop() gave up waiting) still has somewhere
/// valid to push — the result is simply never read.
struct ReactorCompletion {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  ReplyAction action;
};

struct ReactorCompletionQueue {
  std::mutex mutex;
  std::vector<ReactorCompletion> items;
  int wake_fd = -1;  ///< write end of the self-pipe; owned

  ~ReactorCompletionQueue() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void push(ReactorCompletion c) {
    {
      std::lock_guard lock(mutex);
      items.push_back(std::move(c));
    }
    // A full pipe is fine: a wakeup byte is already pending.
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
  }
};

// --- Reactor::Impl ----------------------------------------------------------

struct Reactor::Impl {
  Impl(Listener& l, concurrency::ThreadPool& p, Handler h, Options o)
      : listener(l), pool(p), handler(std::move(h)), options(o) {}

  struct Conn {
    std::uint64_t id = 0;
    Socket socket;

    // Read state machine: header bytes, then payload bytes, repeat.
    std::array<std::byte, FrameHeader::kSize> header_buf;
    std::size_t header_got = 0;
    bool have_header = false;
    FrameHeader header;
    std::vector<std::byte> payload;
    std::size_t payload_got = 0;

    // Dispatch/write side. Requests get arrival-order sequence numbers;
    // replies flush strictly in that order, out-of-order completions
    // park until their predecessors finish.
    std::uint64_t next_dispatch_seq = 0;
    std::uint64_t next_flush_seq = 0;
    std::size_t inflight = 0;  ///< dispatched, completion not yet seen
    std::map<std::uint64_t, ReplyAction> parked;
    std::vector<std::byte> outbuf;
    std::size_t out_off = 0;

    bool paused = false;  ///< read interest dropped (backpressure)
    std::chrono::steady_clock::time_point last_activity;
    std::chrono::steady_clock::time_point last_write_progress;

    [[nodiscard]] std::size_t pending_out() const {
      return outbuf.size() - out_off;
    }
    [[nodiscard]] bool work_pending() const {
      return inflight > 0 || !parked.empty() || pending_out() > 0;
    }
  };

  Listener& listener;
  concurrency::ThreadPool& pool;
  Handler handler;
  Options options;

  std::unique_ptr<Poller> poller;
  std::shared_ptr<ReactorCompletionQueue> completions;
  int wake_read_fd = -1;

  std::map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::unordered_map<int, std::uint64_t> by_fd;
  std::uint64_t next_conn_id = 1;

  std::atomic<bool> draining{false};
  std::atomic<std::size_t> open_count{0};

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> backpressure_pauses{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> slow_closed{0};
  };
  AtomicStats stats;

  // APAR_METRICS probes, labelled {"server", <label>}; null when the
  // metrics plane is off.
  std::shared_ptr<obs::Gauge> open_gauge;
  std::shared_ptr<obs::Counter> accepted_probe;
  std::shared_ptr<obs::Counter> rejected_probe;
  std::shared_ptr<obs::Counter> backpressure_probe;
  std::shared_ptr<obs::Counter> idle_closed_probe;
  std::shared_ptr<obs::Counter> slow_closed_probe;
  std::shared_ptr<obs::Histogram> queue_depth_probe;

  std::thread loop;

  // --- loop body ---------------------------------------------------------

  void run() {
    std::vector<PollEvent> events;
    std::optional<std::chrono::steady_clock::time_point> drain_deadline;
    for (;;) {
      const bool drain = draining.load(std::memory_order_acquire);
      if (drain && !drain_deadline) {
        drain_deadline = std::chrono::steady_clock::now() +
                         options.drain_timeout;
        begin_drain();
      }
      if (drain && conns.empty()) break;
      if (drain_deadline &&
          std::chrono::steady_clock::now() >= *drain_deadline) {
        close_all();
        break;
      }

      poller->wait(events, drain ? 10 : 50);
      for (const PollEvent& ev : events) {
        if (ev.fd == wake_read_fd) {
          drain_wake_pipe();
          continue;
        }
        if (!drain && is_listener_fd(ev.fd)) {
          do_accept();
          continue;
        }
        auto it = by_fd.find(ev.fd);
        if (it == by_fd.end()) continue;
        Conn* conn = conns.at(it->second).get();
        if (ev.error) {
          close_conn(*conn);
          continue;
        }
        if (ev.writable) {
          if (!try_write(*conn)) continue;  // closed on write error
          // Draining the outbound buffer may clear an outbound-bytes
          // pause; without this a quiet client would stay paused forever.
          maybe_resume(*conn);
        }
        if (ev.readable) on_readable(*conn);
      }
      apply_completions();
      sweep_timers();
    }
  }

  // The listener fd is not stored in by_fd; compare against its actual
  // descriptor, cached at start().
  int listener_fd = -1;
  [[nodiscard]] bool is_listener_fd(int fd) const { return fd == listener_fd; }

  void do_accept() {
    for (;;) {
      Socket client = listener.accept(std::chrono::milliseconds(0));
      if (!client.valid()) return;
      if (conns.size() >= options.max_connections) {
        stats.rejected.fetch_add(1, std::memory_order_relaxed);
        if (rejected_probe) rejected_probe->add(1);
        continue;  // client socket closes on scope exit
      }
      if (options.sndbuf_bytes > 0) {
        const int v = options.sndbuf_bytes;
        ::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
      }
      stats.accepted.fetch_add(1, std::memory_order_relaxed);
      if (accepted_probe) accepted_probe->add(1);

      auto conn = std::make_unique<Conn>();
      conn->id = next_conn_id++;
      conn->last_activity = std::chrono::steady_clock::now();
      conn->last_write_progress = conn->last_activity;
      const int fd = client.fd();
      conn->socket = std::move(client);
      poller->add(fd, /*read=*/true, /*write=*/false);
      by_fd[fd] = conn->id;
      conns[conn->id] = std::move(conn);
      open_count.store(conns.size(), std::memory_order_relaxed);
      if (open_gauge) open_gauge->set(static_cast<std::int64_t>(conns.size()));
    }
  }

  void on_readable(Conn& conn) {
    while (!conn.paused) {
      std::byte* dst;
      std::size_t want;
      if (!conn.have_header) {
        dst = conn.header_buf.data() + conn.header_got;
        want = FrameHeader::kSize - conn.header_got;
      } else {
        dst = conn.payload.data() + conn.payload_got;
        want = conn.payload.size() - conn.payload_got;
      }

      if (want > 0) {
        const ssize_t n = ::recv(conn.socket.fd(), dst, want, 0);
        if (n == 0) {  // EOF: normal close (mid-frame or not)
          close_conn(conn);
          return;
        }
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) return;
          if (errno == EINTR) continue;
          close_conn(conn);
          return;
        }
        conn.last_activity = std::chrono::steady_clock::now();
        if (!conn.have_header) {
          conn.header_got += static_cast<std::size_t>(n);
          if (conn.header_got < FrameHeader::kSize) continue;
          try {
            conn.header = decode_header(conn.header_buf.data(),
                                        conn.header_buf.size());
          } catch (const NetError&) {
            stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
            close_conn(conn);
            return;
          }
          conn.have_header = true;
          conn.payload.assign(conn.header.payload_len, std::byte{0});
          conn.payload_got = 0;
          if (conn.header.payload_len > 0) continue;
        } else {
          conn.payload_got += static_cast<std::size_t>(n);
          if (conn.payload_got < conn.payload.size()) continue;
        }
      }

      // One complete frame: hand it to the pool and reset the machine.
      stats.frames_in.fetch_add(1, std::memory_order_relaxed);
      stats.bytes_in.fetch_add(FrameHeader::kSize + conn.payload.size(),
                               std::memory_order_relaxed);
      if (!dispatch(conn, conn.header, std::move(conn.payload)))
        return;  // pool unavailable: connection closed
      conn.have_header = false;
      conn.header_got = 0;
      conn.payload.clear();
      conn.payload_got = 0;
      maybe_pause(conn);
    }
  }

  /// Returns false when the connection had to close (pool unavailable).
  bool dispatch(Conn& conn, FrameHeader header,
                std::vector<std::byte> payload) {
    const std::uint64_t seq = conn.next_dispatch_seq++;
    ++conn.inflight;
    try {
      pool.post([queue = completions, h = handler, cid = conn.id, seq,
                 header, pl = std::move(payload)]() mutable {
        ReactorCompletion done;
        done.conn_id = cid;
        done.seq = seq;
        try {
          done.action = h(header, std::move(pl));
        } catch (...) {
          // The handler answers application errors itself; anything that
          // escapes means the request cannot be answered reliably.
          done.action.drop = true;
        }
        queue->push(std::move(done));
      });
    } catch (...) {
      // Pool shutting down: the request dies with the connection.
      close_conn(conn);
      return false;
    }
    return true;
  }

  void drain_wake_pipe() {
    char buf[256];
    while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }

  void apply_completions() {
    std::vector<ReactorCompletion> items;
    {
      std::lock_guard lock(completions->mutex);
      items.swap(completions->items);
    }
    for (ReactorCompletion& c : items) {
      auto it = conns.find(c.conn_id);
      if (it == conns.end()) continue;  // connection already gone
      Conn& conn = *it->second;
      --conn.inflight;
      conn.parked.emplace(c.seq, std::move(c.action));
      if (!flush_ready(conn)) continue;  // closed (chaos drop / write error)
      // Flushing may have grown the outbound buffer past the cap (pause
      // reads even if the client has stopped sending for now) or shrunk
      // the in-flight set below it (resume).
      maybe_pause(conn);
      maybe_resume(conn);
      if (draining.load(std::memory_order_relaxed) && !conn.work_pending())
        close_conn(conn);
    }
  }

  /// Move in-order parked replies into the outbound buffer and push
  /// bytes. Returns false when the connection was closed.
  bool flush_ready(Conn& conn) {
    while (!conn.parked.empty() &&
           conn.parked.begin()->first == conn.next_flush_seq) {
      ReplyAction action = std::move(conn.parked.begin()->second);
      conn.parked.erase(conn.parked.begin());
      ++conn.next_flush_seq;
      if (action.drop) {
        // Chaos "lost reply": close without answering — later pipelined
        // requests on this connection die with it, exactly like the
        // thread-per-connection mode.
        close_conn(conn);
        return false;
      }
      action.header.payload_len =
          static_cast<std::uint32_t>(action.payload.size());
      const auto bytes = encode_header(action.header);
      conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
      conn.outbuf.insert(conn.outbuf.end(), action.payload.begin(),
                         action.payload.end());
      stats.frames_out.fetch_add(1, std::memory_order_relaxed);
      if (queue_depth_probe)
        queue_depth_probe->record(static_cast<double>(conn.pending_out()));
    }
    return try_write(conn);
  }

  /// Push pending outbound bytes until EAGAIN or empty. Returns false
  /// when the connection was closed on a write error.
  bool try_write(Conn& conn) {
    while (conn.out_off < conn.outbuf.size()) {
      const ssize_t n =
          ::send(conn.socket.fd(), conn.outbuf.data() + conn.out_off,
                 conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        stats.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        conn.last_write_progress = std::chrono::steady_clock::now();
        conn.last_activity = conn.last_write_progress;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_conn(conn);
      return false;
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
    } else if (conn.out_off > (64u << 10)) {
      conn.outbuf.erase(conn.outbuf.begin(),
                        conn.outbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.out_off));
      conn.out_off = 0;
    }
    update_interest(conn);
    return true;
  }

  void maybe_pause(Conn& conn) {
    if (conn.paused) return;
    if (conn.inflight + conn.parked.size() >= options.max_inflight ||
        conn.pending_out() >= options.max_outbound_bytes) {
      conn.paused = true;
      stats.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
      if (backpressure_probe) backpressure_probe->add(1);
      update_interest(conn);
    }
  }

  void maybe_resume(Conn& conn) {
    if (!conn.paused) return;
    if (conn.inflight + conn.parked.size() < options.max_inflight &&
        conn.pending_out() < options.max_outbound_bytes) {
      conn.paused = false;
      update_interest(conn);
    }
  }

  void update_interest(Conn& conn) {
    const bool read =
        !conn.paused && !draining.load(std::memory_order_relaxed);
    poller->update(conn.socket.fd(), read, conn.pending_out() > 0);
  }

  void sweep_timers() {
    const auto now = std::chrono::steady_clock::now();
    // close_conn mutates conns; collect victims first.
    std::vector<Conn*> idle_victims;
    std::vector<Conn*> stall_victims;
    for (auto& [id, conn] : conns) {
      if (conn->pending_out() > 0 &&
          now - conn->last_write_progress > options.write_stall_timeout)
        stall_victims.push_back(conn.get());
      else if (options.idle_timeout.count() > 0 && !conn->work_pending() &&
               now - conn->last_activity > options.idle_timeout)
        idle_victims.push_back(conn.get());
    }
    for (Conn* conn : stall_victims) {
      stats.slow_closed.fetch_add(1, std::memory_order_relaxed);
      if (slow_closed_probe) slow_closed_probe->add(1);
      APAR_DEBUG("net") << "reactor: evicting slow reader fd="
                        << conn->socket.fd();
      close_conn(*conn);
    }
    for (Conn* conn : idle_victims) {
      stats.idle_closed.fetch_add(1, std::memory_order_relaxed);
      if (idle_closed_probe) idle_closed_probe->add(1);
      close_conn(*conn);
    }
  }

  void close_conn(Conn& conn) {
    poller->remove(conn.socket.fd());
    by_fd.erase(conn.socket.fd());
    conns.erase(conn.id);  // destroys conn — no touching it after this
    open_count.store(conns.size(), std::memory_order_relaxed);
    if (open_gauge) open_gauge->set(static_cast<std::int64_t>(conns.size()));
  }

  void begin_drain() {
    poller->remove(listener_fd);
    std::vector<Conn*> done;
    for (auto& [id, conn] : conns) {
      update_interest(*conn);  // read interest off for everyone
      if (!conn->work_pending()) done.push_back(conn.get());
    }
    for (Conn* conn : done) close_conn(*conn);
  }

  void close_all() {
    while (!conns.empty()) close_conn(*conns.begin()->second);
  }
};

// --- Reactor ----------------------------------------------------------------

Reactor::Reactor(Listener& listener, concurrency::ThreadPool& pool,
                 Handler handler, Options options, std::string label)
    : impl_(std::make_unique<Impl>(listener, pool, std::move(handler),
                                   options)) {
  int fds[2];
  if (::pipe(fds) < 0)
    throw NetError(NetError::Kind::kIo, "reactor self-pipe failed");
  make_nonblocking(fds[0]);
  make_nonblocking(fds[1]);
  impl_->completions = std::make_shared<ReactorCompletionQueue>();
  impl_->completions->wake_fd = fds[1];
  impl_->wake_read_fd = fds[0];

  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const obs::Labels labels{{"server", label}};
    impl_->open_gauge = reg.gauge("net.server.open_connections", labels);
    impl_->accepted_probe = reg.counter("net.server.accepted", labels);
    impl_->rejected_probe = reg.counter("net.server.rejected", labels);
    impl_->backpressure_probe =
        reg.counter("net.server.backpressure_pauses", labels);
    impl_->idle_closed_probe = reg.counter("net.server.idle_closed", labels);
    impl_->slow_closed_probe = reg.counter("net.server.slow_closed", labels);
    impl_->queue_depth_probe =
        reg.histogram("net.server.queue_depth", labels,
                      obs::Histogram::bytes_bounds());
  }

  impl_->poller = make_poller(options.force_poll);
  impl_->listener_fd = listener.fd();
  impl_->poller->add(impl_->listener_fd, /*read=*/true, /*write=*/false);
  impl_->poller->add(impl_->wake_read_fd, /*read=*/true, /*write=*/false);
  impl_->loop = std::thread([this] { impl_->run(); });
}

Reactor::~Reactor() {
  stop();
  if (impl_->wake_read_fd >= 0) ::close(impl_->wake_read_fd);
}

void Reactor::stop() {
  if (impl_->draining.exchange(true, std::memory_order_acq_rel)) {
    if (impl_->loop.joinable()) impl_->loop.join();
    return;
  }
  // Wake the loop so it notices the drain promptly.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(impl_->completions->wake_fd, &byte, 1);
  if (impl_->loop.joinable()) impl_->loop.join();
}

Reactor::Stats Reactor::stats() const {
  const Impl::AtomicStats& a = impl_->stats;
  Stats s;
  s.accepted = a.accepted.load(std::memory_order_relaxed);
  s.rejected = a.rejected.load(std::memory_order_relaxed);
  s.frames_in = a.frames_in.load(std::memory_order_relaxed);
  s.frames_out = a.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = a.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = a.bytes_out.load(std::memory_order_relaxed);
  s.protocol_errors = a.protocol_errors.load(std::memory_order_relaxed);
  s.backpressure_pauses =
      a.backpressure_pauses.load(std::memory_order_relaxed);
  s.idle_closed = a.idle_closed.load(std::memory_order_relaxed);
  s.slow_closed = a.slow_closed.load(std::memory_order_relaxed);
  return s;
}

std::size_t Reactor::open_connections() const {
  return impl_->open_count.load(std::memory_order_relaxed);
}

}  // namespace apar::net
