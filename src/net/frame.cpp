#include "apar/net/frame.hpp"

#include "apar/net/error.hpp"

namespace apar::net {

namespace {

void put_le(std::byte* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

std::uint64_t get_le(const std::byte* in, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::array<std::byte, FrameHeader::kSize> encode_header(
    const FrameHeader& header) {
  std::array<std::byte, FrameHeader::kSize> out{};
  put_le(out.data() + 0, FrameHeader::kMagic, 2);
  out[2] = static_cast<std::byte>(FrameHeader::kProtocolVersion);
  out[3] = static_cast<std::byte>(static_cast<std::uint8_t>(header.format));
  out[4] = static_cast<std::byte>(static_cast<std::uint8_t>(header.op));
  out[5] = static_cast<std::byte>(header.flags);
  put_le(out.data() + 6, header.payload_len, 4);
  put_le(out.data() + 10, header.request_id, 8);
  return out;
}

FrameHeader decode_header(const std::byte* data, std::size_t size) {
  if (size < FrameHeader::kSize)
    throw NetError(NetError::Kind::kProtocol,
                   "frame header truncated: " + std::to_string(size) +
                       " of " + std::to_string(FrameHeader::kSize) + " bytes");
  const auto magic = static_cast<std::uint16_t>(get_le(data + 0, 2));
  if (magic != FrameHeader::kMagic)
    throw NetError(NetError::Kind::kProtocol,
                   "bad frame magic 0x" + std::to_string(magic));
  const auto version = std::to_integer<std::uint8_t>(data[2]);
  if (version != FrameHeader::kProtocolVersion)
    throw NetError(NetError::Kind::kProtocol,
                   "unsupported protocol version " + std::to_string(version));

  FrameHeader header;
  const auto format = std::to_integer<std::uint8_t>(data[3]);
  switch (format) {
    case static_cast<std::uint8_t>(serial::Format::kCompact):
      header.format = serial::Format::kCompact;
      break;
    case static_cast<std::uint8_t>(serial::Format::kVerbose):
      header.format = serial::Format::kVerbose;
      break;
    default:
      throw NetError(NetError::Kind::kProtocol,
                     "unknown wire format " + std::to_string(format));
  }
  const auto op = std::to_integer<std::uint8_t>(data[4]);
  if (op < static_cast<std::uint8_t>(FrameHeader::Op::kCreate) ||
      op > static_cast<std::uint8_t>(FrameHeader::Op::kTelemetry))
    throw NetError(NetError::Kind::kProtocol,
                   "unknown frame op " + std::to_string(op));
  header.op = static_cast<FrameHeader::Op>(op);
  header.flags = std::to_integer<std::uint8_t>(data[5]);
  if ((header.flags & ~FrameHeader::kFlagTraceContext) != 0)
    throw NetError(NetError::Kind::kProtocol,
                   "nonzero reserved flags " + std::to_string(header.flags));
  header.payload_len = static_cast<std::uint32_t>(get_le(data + 6, 4));
  if (header.payload_len > FrameHeader::kMaxPayload)
    throw NetError(NetError::Kind::kProtocol,
                   "payload length " + std::to_string(header.payload_len) +
                       " exceeds cap " +
                       std::to_string(FrameHeader::kMaxPayload));
  header.request_id = get_le(data + 10, 8);
  return header;
}

std::string_view op_name(FrameHeader::Op op) {
  switch (op) {
    case FrameHeader::Op::kCreate: return "create";
    case FrameHeader::Op::kCall: return "call";
    case FrameHeader::Op::kOneWay: return "one_way";
    case FrameHeader::Op::kLookup: return "lookup";
    case FrameHeader::Op::kBind: return "bind";
    case FrameHeader::Op::kReplyOk: return "reply_ok";
    case FrameHeader::Op::kReplyError: return "reply_error";
    case FrameHeader::Op::kTelemetry: return "telemetry";
  }
  return "unknown";
}

void append_trace_context(std::vector<std::byte>& payload,
                          const obs::TraceContext& ctx) {
  put_u64(payload, ctx.trace_id);
  put_u64(payload, ctx.span_id);
}

obs::TraceContext read_trace_context(const std::byte* payload,
                                     std::size_t size) {
  if (size < FrameHeader::kTraceContextSize)
    throw NetError(NetError::Kind::kProtocol,
                   "flagged payload too short for trace trailer: " +
                       std::to_string(size) + " bytes");
  const std::byte* trailer = payload + size - FrameHeader::kTraceContextSize;
  obs::TraceContext ctx;
  ctx.trace_id = get_le(trailer, 8);
  ctx.span_id = get_le(trailer + 8, 8);
  return ctx;
}

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  const std::size_t at = out.size();
  out.resize(at + 2);
  put_le(out.data() + at, v, 2);
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  put_le(out.data() + at, v, 4);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  put_le(out.data() + at, v, 8);
}

void put_string(std::vector<std::byte>& out, std::string_view s) {
  if (s.size() > 0xffff)
    throw NetError(NetError::Kind::kProtocol,
                   "envelope string too long: " + std::to_string(s.size()));
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  const std::size_t at = out.size();
  out.resize(at + s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    out[at + i] = static_cast<std::byte>(s[i]);
}

void EnvelopeReader::need(std::size_t n) const {
  if (size_ - pos_ < n)
    throw NetError(NetError::Kind::kProtocol,
                   "envelope truncated: need " + std::to_string(n) +
                       " bytes, have " + std::to_string(size_ - pos_));
}

std::uint8_t EnvelopeReader::u8() {
  need(1);
  const auto v = std::to_integer<std::uint8_t>(data_[pos_]);
  pos_ += 1;
  return v;
}

std::uint16_t EnvelopeReader::u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(get_le(data_ + pos_, 2));
  pos_ += 2;
  return v;
}

std::uint32_t EnvelopeReader::u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(get_le(data_ + pos_, 4));
  pos_ += 4;
  return v;
}

std::uint64_t EnvelopeReader::u64() {
  need(8);
  const auto v = get_le(data_ + pos_, 8);
  pos_ += 8;
  return v;
}

std::string EnvelopeReader::string() {
  const std::uint16_t n = u16();
  need(n);
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i)
    s[i] = static_cast<char>(std::to_integer<std::uint8_t>(data_[pos_ + i]));
  pos_ += n;
  return s;
}

}  // namespace apar::net
