#include "apar/net/connection_pool.hpp"

namespace apar::net {

ConnectionPool::Checkout ConnectionPool::acquire(const Endpoint& endpoint,
                                                 Deadline deadline) {
  for (;;) {
    Socket candidate;
    {
      std::lock_guard lock(mutex_);
      auto it = idle_.find(endpoint);
      if (it == idle_.end() || it->second.empty()) break;
      candidate = std::move(it->second.back());
      it->second.pop_back();
    }
    // Validate outside the lock: idle_and_healthy polls the fd.
    if (candidate.idle_and_healthy()) {
      std::lock_guard lock(mutex_);
      ++stats_.reuses;
      return {std::move(candidate), true};
    }
    std::lock_guard lock(mutex_);
    ++stats_.discards;
  }
  Socket fresh = dial(endpoint, deadline);
  std::lock_guard lock(mutex_);
  ++stats_.dials;
  return {std::move(fresh), false};
}

void ConnectionPool::give_back(const Endpoint& endpoint, Socket socket) {
  if (!socket.valid()) return;
  std::lock_guard lock(mutex_);
  auto& bucket = idle_[endpoint];
  if (bucket.size() >= max_idle_) return;  // socket closes on destruction
  bucket.push_back(std::move(socket));
}

std::size_t ConnectionPool::evict(const Endpoint& endpoint) {
  std::vector<Socket> victims;
  {
    std::lock_guard lock(mutex_);
    auto it = idle_.find(endpoint);
    if (it == idle_.end()) return 0;
    victims = std::move(it->second);
    idle_.erase(it);
    stats_.evictions += victims.size();
  }
  // victims close outside the lock
  return victims.size();
}

void ConnectionPool::clear() {
  std::lock_guard lock(mutex_);
  idle_.clear();
}

ConnectionPool::Stats ConnectionPool::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t ConnectionPool::idle_count(const Endpoint& endpoint) const {
  std::lock_guard lock(mutex_);
  auto it = idle_.find(endpoint);
  return it == idle_.end() ? 0 : it->second.size();
}

}  // namespace apar::net
