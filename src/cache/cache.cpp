#include "apar/cache/cache_stats.hpp"

#include "apar/obs/metrics.hpp"

namespace apar::cache {

CacheProbes CacheProbes::make(const std::string& name) {
  CacheProbes probes;
  if (!obs::metrics_enabled()) return probes;
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels labels{{"cache", name}};
  probes.hits = registry.counter("cache.hits", labels);
  probes.misses = registry.counter("cache.misses", labels);
  probes.coalesced = registry.counter("cache.coalesced", labels);
  probes.evictions = registry.counter("cache.evictions", labels);
  probes.expiries = registry.counter("cache.expiries", labels);
  probes.entries = registry.gauge("cache.entries", labels);
  probes.bytes = registry.gauge("cache.bytes", labels);
  return probes;
}

}  // namespace apar::cache
