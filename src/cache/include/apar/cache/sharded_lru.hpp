#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apar/cache/cache_stats.hpp"
#include "apar/common/stress.hpp"
#include "apar/common/thread_annotations.hpp"
#include "apar/obs/metrics.hpp"

namespace apar::cache {

namespace detail {

/// Default byte charge of a cached (key, value) pair: the fixed footprint
/// plus the dynamic payload of anything with size() (strings, byte
/// buffers, vectors). Deterministic by construction so the model-based
/// test can predict byte-bound evictions exactly.
template <class X>
std::size_t dynamic_bytes(const X& x) {
  if constexpr (requires { x.size(); typename X::value_type; }) {
    return x.size() * sizeof(typename X::value_type);
  } else {
    (void)x;
    return 0;
  }
}

}  // namespace detail

/// A sharded concurrent LRU map — the production-grade descendant of the
/// paper's §4.5 object cache, shaped after dist-clang's file_cache: the
/// single biggest win under heavy repeated traffic is not recomputing.
///
/// Concurrency model: the key space is split across `shards` independent
/// shards (hash-routed); each shard is one mutex around an unordered_map
/// whose entries are threaded onto an intrusive doubly-linked LRU list
/// (pointer surgery on hit, no allocation). Two operations contend only
/// when their keys share a shard, so throughput scales with shard count
/// until the hash collides.
///
/// Bounds and expiry (all per shard, deterministically — the model-based
/// test in tests/cache replays these rules against a reference map):
///   - entry bound: ceil(max_entries / shards) live entries per shard;
///   - byte bound: ceil(max_bytes / shards) charged bytes per shard
///     (0 = unbounded); the charge of an entry is Options::size_of, or
///     sizeof both types plus dynamic payload by default;
///   - inserting past a bound evicts from the LRU tail until back under
///     both bounds (an oversized single entry evicts itself: the shard
///     ends empty rather than silently over budget);
///   - TTL is measured from insert/overwrite (not refreshed by reads) and
///     reaped lazily: a lookup that finds a lapsed entry removes it and
///     counts an expiry + a miss.
///
/// get_or_compute() adds single-flight memoisation: concurrent misses on
/// one key elect exactly one computing leader; the racers wait on the
/// leader's in-flight slot and share its result (counted `coalesced`).
/// A compute that throws is delivered to every waiter and caches NOTHING —
/// errors are never memoized, so a transient failure cannot poison the key.
template <class K, class V, class Hash = std::hash<K>>
class ShardedLru {
 public:
  struct Options {
    std::size_t shards = 8;       ///< rounded up to a power of two
    std::size_t max_entries = 1024;
    std::size_t max_bytes = 0;    ///< 0 = unbounded
    std::chrono::nanoseconds ttl{0};  ///< 0 = entries never expire
    /// Byte charge of an entry; null uses the deterministic default.
    std::function<std::size_t(const K&, const V&)> size_of;
    /// Monotonic nanosecond clock, only consulted when ttl > 0. Tests
    /// inject a manual clock to script TTL-advance deterministically.
    std::function<std::uint64_t()> now;
    /// Metric label ({"cache": name}) for the registry mirrors.
    std::string name = "lru";
  };

  explicit ShardedLru(Options options)
      : options_(std::move(options)), probes_(CacheProbes::make(options_.name)) {
    std::size_t n = 1;
    while (n < std::max<std::size_t>(1, options_.shards)) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
    cap_entries_ = (options_.max_entries + n - 1) / n;
    if (cap_entries_ == 0) cap_entries_ = 1;
    cap_bytes_ = options_.max_bytes == 0 ? 0 : (options_.max_bytes + n - 1) / n;
    if (!options_.now)
      options_.now = [] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
      };
  }

  ShardedLru(const ShardedLru&) = delete;
  ShardedLru& operator=(const ShardedLru&) = delete;

  /// Deterministic default charge (exposed so tests and reference models
  /// compute the same number the cache does).
  static std::size_t default_charge(const K& key, const V& value) {
    return sizeof(K) + sizeof(V) + detail::dynamic_bytes(key) +
           detail::dynamic_bytes(value);
  }

  [[nodiscard]] std::size_t shard_count() const { return mask_ + 1; }
  [[nodiscard]] std::size_t shard_of(const K& key) const {
    return common::mix64(static_cast<std::uint64_t>(Hash{}(key))) & mask_;
  }
  [[nodiscard]] std::size_t shard_entry_capacity() const {
    return cap_entries_;
  }
  [[nodiscard]] std::size_t shard_byte_capacity() const { return cap_bytes_; }

  /// Lookup; a live hit is freshened to most-recently-used.
  std::optional<V> get(const K& key) {
    Shard& sh = shard_for(key);
    common::MutexLock lock(sh.mu);
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    Node* node = find_live(sh, key);
    if (node == nullptr) {
      count_miss();
      return std::nullopt;
    }
    touch(sh, node);
    count_hit();
    return node->value;
  }

  /// Insert or overwrite, then evict from the LRU tail to the bounds.
  void put(const K& key, V value) {
    Shard& sh = shard_for(key);
    common::MutexLock lock(sh.mu);
    insert_locked(sh, key, std::move(value));
  }

  /// Remove a key (expired entries count as erases here, not expiries).
  bool erase(const K& key) {
    Shard& sh = shard_for(key);
    common::MutexLock lock(sh.mu);
    auto it = sh.map.find(key);
    if (it == sh.map.end()) return false;
    remove_node(sh, &it->second);
    stats_.erases.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Memoized computation with single-flight semantics: at most one
  /// compute per key runs at a time; racing callers wait and share the
  /// leader's result (or its exception — failures cache nothing).
  V get_or_compute(const K& key, const std::function<V()>& compute) {
    Shard& sh = shard_for(key);
    std::shared_ptr<InFlight> flight;
    {
      common::MutexLock lock(sh.mu);
      stats_.gets.fetch_add(1, std::memory_order_relaxed);
      if (Node* node = find_live(sh, key)) {
        touch(sh, node);
        count_hit();
        return node->value;
      }
      auto it = sh.inflight.find(key);
      if (it != sh.inflight.end()) {
        flight = it->second;
        stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
        if (probes_.coalesced) probes_.coalesced->add(1);
      } else {
        flight = std::make_shared<InFlight>();
        sh.inflight.emplace(key, flight);
        count_miss();
      }
    }

    if (flight->leader.exchange(false, std::memory_order_acq_rel)) {
      // This thread won the election: compute outside the shard lock so
      // hits on other keys in the shard proceed meanwhile.
      V value;
      try {
        value = compute();
      } catch (...) {
        {
          common::MutexLock lock(sh.mu);
          sh.inflight.erase(key);
        }
        {
          std::lock_guard flock(flight->mu);
          flight->error = std::current_exception();
          flight->done = true;
        }
        flight->cv.notify_all();
        throw;
      }
      {
        common::MutexLock lock(sh.mu);
        sh.inflight.erase(key);
        insert_locked(sh, key, value);
      }
      {
        std::lock_guard flock(flight->mu);
        flight->value = value;
        flight->done = true;
      }
      flight->cv.notify_all();
      return value;
    }

    std::unique_lock flock(flight->mu);
    flight->cv.wait(flock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return *flight->value;
  }

  /// Presence probe without LRU or counter side effects (still reports a
  /// lapsed entry as absent). For tests and diagnostics.
  [[nodiscard]] bool peek(const K& key) const {
    const Shard& sh = shard_for(key);
    common::MutexLock lock(sh.mu);
    auto it = sh.map.find(key);
    return it != sh.map.end() && !lapsed(it->second);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      common::MutexLock lock(shards_[i].mu);
      n += shards_[i].map.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t bytes() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      common::MutexLock lock(shards_[i].mu);
      n += shards_[i].bytes;
    }
    return n;
  }

  [[nodiscard]] std::size_t entries_in(std::size_t shard) const {
    common::MutexLock lock(shards_[shard].mu);
    return shards_[shard].map.size();
  }

  [[nodiscard]] std::size_t bytes_in(std::size_t shard) const {
    common::MutexLock lock(shards_[shard].mu);
    return shards_[shard].bytes;
  }

  /// Keys of one shard in recency order (MRU first) — the ground truth the
  /// model-based test compares its reference list against.
  [[nodiscard]] std::vector<K> keys_in(std::size_t shard) const {
    const Shard& sh = shards_[shard];
    common::MutexLock lock(sh.mu);
    std::vector<K> out;
    out.reserve(sh.map.size());
    for (const Node* n = sh.head; n != nullptr; n = n->next)
      out.push_back(*n->key);
    return out;
  }

  void clear() {
    for (std::size_t i = 0; i <= mask_; ++i) {
      Shard& sh = shards_[i];
      common::MutexLock lock(sh.mu);
      if (probes_.entries) {
        probes_.entries->add(-static_cast<std::int64_t>(sh.map.size()));
        probes_.bytes->add(-static_cast<std::int64_t>(sh.bytes));
      }
      sh.map.clear();
      sh.head = sh.tail = nullptr;
      sh.bytes = 0;
    }
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Node {
    V value{};
    const K* key = nullptr;  ///< points at the owning map entry's key
    std::size_t charge = 0;
    std::uint64_t expires_at = 0;  ///< 0 = never
    Node* prev = nullptr;          ///< towards MRU
    Node* next = nullptr;          ///< towards LRU
  };

  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::optional<V> value;
    std::exception_ptr error;
    std::atomic<bool> leader{true};  ///< claimed by the computing thread
  };

  /// One shard: map + intrusive LRU list + in-flight computations. Node
  /// addresses are stable because unordered_map never relocates elements.
  struct Shard {
    mutable common::Mutex mu;
    std::unordered_map<K, Node, Hash> map APAR_GUARDED_BY(mu);
    std::unordered_map<K, std::shared_ptr<InFlight>, Hash> inflight
        APAR_GUARDED_BY(mu);
    Node* head APAR_GUARDED_BY(mu) = nullptr;  ///< most recently used
    Node* tail APAR_GUARDED_BY(mu) = nullptr;  ///< least recently used
    std::size_t bytes APAR_GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(const K& key) { return shards_[shard_of(key)]; }
  const Shard& shard_for(const K& key) const { return shards_[shard_of(key)]; }

  [[nodiscard]] bool lapsed(const Node& node) const {
    return node.expires_at != 0 && options_.now() >= node.expires_at;
  }

  /// Find a usable entry; reaps (and counts) a lapsed one. Caller holds
  /// the shard lock and accounts the hit/miss.
  Node* find_live(Shard& sh, const K& key) APAR_REQUIRES(sh.mu) {
    auto it = sh.map.find(key);
    if (it == sh.map.end()) return nullptr;
    if (lapsed(it->second)) {
      remove_node(sh, &it->second);
      stats_.expiries.fetch_add(1, std::memory_order_relaxed);
      if (probes_.expiries) probes_.expiries->add(1);
      return nullptr;
    }
    return &it->second;
  }

  void insert_locked(Shard& sh, const K& key, V value) APAR_REQUIRES(sh.mu) {
    const std::size_t charge = options_.size_of
                                   ? options_.size_of(key, value)
                                   : default_charge(key, value);
    auto [it, fresh] = sh.map.try_emplace(key);
    Node& node = it->second;
    if (!fresh) {
      sh.bytes -= node.charge;
      if (probes_.bytes)
        probes_.bytes->add(-static_cast<std::int64_t>(node.charge));
      unlink(sh, &node);
    }
    node.value = std::move(value);
    node.key = &it->first;
    node.charge = charge;
    node.expires_at =
        options_.ttl.count() > 0
            ? options_.now() + static_cast<std::uint64_t>(options_.ttl.count())
            : 0;
    link_front(sh, &node);
    sh.bytes += charge;
    stats_.inserts.fetch_add(1, std::memory_order_relaxed);
    if (probes_.entries) {
      if (fresh) probes_.entries->add(1);
      probes_.bytes->add(static_cast<std::int64_t>(charge));
    }
    while (sh.map.size() > cap_entries_ ||
           (cap_bytes_ != 0 && sh.bytes > cap_bytes_)) {
      Node* victim = sh.tail;
      remove_node(sh, victim);
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      if (probes_.evictions) probes_.evictions->add(1);
      if (sh.map.empty()) break;
    }
  }

  /// Unlink + erase from the map; caller accounts the removal reason.
  void remove_node(Shard& sh, Node* node) APAR_REQUIRES(sh.mu) {
    unlink(sh, node);
    sh.bytes -= node->charge;
    if (probes_.entries) {
      probes_.entries->add(-1);
      probes_.bytes->add(-static_cast<std::int64_t>(node->charge));
    }
    sh.map.erase(*node->key);
  }

  void touch(Shard& sh, Node* node) APAR_REQUIRES(sh.mu) {
    if (sh.head == node) return;
    unlink(sh, node);
    link_front(sh, node);
  }

  void link_front(Shard& sh, Node* node) APAR_REQUIRES(sh.mu) {
    node->prev = nullptr;
    node->next = sh.head;
    if (sh.head != nullptr) sh.head->prev = node;
    sh.head = node;
    if (sh.tail == nullptr) sh.tail = node;
  }

  void unlink(Shard& sh, Node* node) APAR_REQUIRES(sh.mu) {
    if (node->prev != nullptr) node->prev->next = node->next;
    if (node->next != nullptr) node->next->prev = node->prev;
    if (sh.head == node) sh.head = node->next;
    if (sh.tail == node) sh.tail = node->prev;
    node->prev = node->next = nullptr;
  }

  void count_hit() {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    if (probes_.hits) probes_.hits->add(1);
  }
  void count_miss() {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    if (probes_.misses) probes_.misses->add(1);
  }

  Options options_;
  CacheProbes probes_;
  std::size_t mask_ = 0;
  std::size_t cap_entries_ = 1;
  std::size_t cap_bytes_ = 0;
  std::unique_ptr<Shard[]> shards_;
  CacheStats stats_;
};

}  // namespace apar::cache
