#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/cache/sharded_lru.hpp"
#include "apar/serial/archive.hpp"
#include "apar/serial/wire_types.hpp"

namespace apar::cache {

namespace detail {

/// Copy-restore a decoded reply value into a by-reference parameter (the
/// same convention the distribution aspect uses, so a cache hit mutates
/// the caller's arguments exactly like the re-executed call would).
template <class Arg>
void read_restore(serial::Reader& reader, Arg& arg) {
  std::decay_t<Arg> tmp{};
  reader.value(tmp);
  arg = std::move(tmp);
}
template <class Arg>
void read_restore(serial::Reader& reader, const Arg& arg) {
  std::decay_t<Arg> tmp{};
  reader.value(tmp);
  (void)arg;  // const parameter: the recorded value is discarded
}

/// Cache metadata for the weave-plan analyzer: one WireArg per argument
/// plus one for a non-void result (everything the recorded effect has to
/// encode). Also notes every type in the global TypeRegistry.
template <class R, class... A>
std::vector<aop::WireArg> note_cache_args(
    std::type_identity<std::tuple<A...>>) {
  (serial::TypeRegistry::global().note<A>(), ...);
  std::vector<aop::WireArg> out{aop::WireArg{
      serial::wire_type_name<A>(), serial::kWireSerializable<A>}...};
  if constexpr (!std::is_void_v<R>) {
    serial::TypeRegistry::global().note<std::remove_cvref_t<R>>();
    out.push_back(aop::WireArg{
        serial::wire_type_name<std::remove_cvref_t<R>>(),
        serial::kWireSerializable<R> && !std::is_reference_v<R>});
  }
  return out;
}

}  // namespace detail

/// What distinguishes two targets in the cache key.
enum class KeyScope {
  /// Key includes the target's identity: two objects of the same class
  /// never share entries. The safe default — idempotency only promises a
  /// pure function of arguments *and construction-fixed state*, and two
  /// instances may have been constructed differently.
  kPerTarget,
  /// Key is signature + arguments only: every target of the class shares
  /// one entry set. Opt-in for fungible farm duplicates, where any worker
  /// gives the same answer by construction; exactly what makes the farm's
  /// remote calls cacheable in front of the wire.
  kArgsOnly,
};

/// The memoisation aspect — the runtime-pluggable realisation of the
/// paper's §4.5 cache, grown from "reuse the computed object" into a
/// result cache for idempotent method calls.
///
/// cache_method<M>() registers around advice (optimisation layer by
/// default, order 450) that keys on signature [+ target identity] + the
/// kCompact-serialized argument values and memoizes the call's *recorded
/// effect*: the post-call values of every argument plus the return value,
/// as one serialized blob in a ShardedLru. On a hit the effect is replayed
/// by copy-restore — by-reference arguments receive the recorded values,
/// the result is decoded and returned — and proceed() is never called, so
/// every inner layer is skipped. Because the optimisation layer sits
/// before distribution (order 500), a hit on a remote target never
/// reaches the middleware: the cache stands in front of the wire and a
/// hit costs zero network round-trips.
///
/// Misses run through ShardedLru::get_or_compute, so concurrent misses on
/// one key execute the underlying method exactly once (single-flight) and
/// a throwing call caches nothing.
///
/// Safety is a declared contract, checked statically: the aspect records
/// mark_caches metadata (argument/result serializability and the
/// APAR_METHOD_IDEMPOTENT verdict) on each advice, and apar-analyze's
/// cache-safety pass flags caching of undeclared or unserializable
/// signatures — escalated to an error when the join point is also
/// distributed over a real wire transport. A signature whose effect
/// cannot be serialized at all degrades to pass-through advice (the call
/// always proceeds), mirroring how the distribution aspect handles
/// unserializable arguments.
///
/// Caveat: advice on a directly self-recursive method would deadlock on
/// its own in-flight entry; memoize the outer call only.
template <class T>
class CacheAspect : public aop::Aspect {
 public:
  using Store = ShardedLru<std::string, std::vector<std::byte>>;

  struct Options {
    std::size_t shards = 8;
    std::size_t max_entries = 1024;
    std::size_t max_bytes = 0;        ///< 0 = unbounded
    std::chrono::nanoseconds ttl{0};  ///< 0 = entries never expire
    int order = aop::order::kOptimisation;
  };

  CacheAspect(std::string name, Options options = {})
      : Aspect(std::move(name)), options_(options), store_(store_options()) {}

  explicit CacheAspect(Options options = {})
      : CacheAspect("Cache", options) {}

  /// Memoize method M (declared via APAR_METHOD_NAME; see KeyScope for
  /// what the key distinguishes).
  template <auto M>
  CacheAspect& cache_method(KeyScope key_scope = KeyScope::kPerTarget) {
    using Traits = aop::detail::MemberFnTraits<decltype(M)>;
    register_cached<M, typename Traits::Ret>(
        std::type_identity<typename Traits::ArgsTuple>{}, key_scope);
    return *this;
  }

  [[nodiscard]] Store& store() { return store_; }
  [[nodiscard]] const CacheStats& stats() const { return store_.stats(); }
  [[nodiscard]] std::uint64_t hits() const {
    return store_.stats().hits.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return store_.stats().misses.load(std::memory_order_relaxed);
  }

  void invalidate_all() { store_.clear(); }

 private:
  typename Store::Options store_options() const {
    typename Store::Options so;
    so.shards = options_.shards;
    so.max_entries = options_.max_entries;
    so.max_bytes = options_.max_bytes;
    so.ttl = options_.ttl;
    so.name = this->name();
    return so;
  }

  template <auto M, class R, class... A>
  void register_cached(std::type_identity<std::tuple<A...>>,
                       KeyScope key_scope) {
    // Whether the effect (post-call arguments + result) can be recorded
    // and replayed. Reference results are excluded outright: a replayed
    // reference would dangle.
    constexpr bool kWireOk =
        (serial::kWireSerializable<A> && ...) && !std::is_reference_v<R> &&
        (std::is_void_v<R> || serial::kWireSerializable<R>);
    this->template around_method<M>(
            options_.order, aop::Scope::any(),
            [this, key_scope](aop::CallInvocation<T, R, A...>& inv) -> R {
              if constexpr (!kWireOk) {
                return inv.proceed();  // analyzer reports the gap
              } else {
                const std::string key = make_key(inv, key_scope);
                const std::vector<std::byte> effect =
                    store_.get_or_compute(key, [&] {
                      if constexpr (std::is_void_v<R>) {
                        inv.proceed();
                        return encode_effect<R>(inv.args());
                      } else {
                        R result = inv.proceed();
                        return encode_effect<R>(inv.args(), result);
                      }
                    });
                // Replay the effect. For the thread that just computed it
                // this re-assigns the values it already holds; for a hit
                // or a coalesced waiter it is the whole call.
                serial::Reader reader(effect, serial::Format::kCompact);
                std::apply(
                    [&](auto&... args) {
                      (detail::read_restore(reader, args), ...);
                    },
                    inv.args());
                if constexpr (!std::is_void_v<R>) {
                  std::remove_cvref_t<R> result{};
                  reader.value(result);
                  return result;
                }
              }
            })
        .mark_caches(detail::note_cache_args<R>(
                         std::type_identity<std::tuple<A...>>{}),
                     aop::method_idempotent<M>());
  }

  template <class R, class... A, class... Extra>
  static std::vector<std::byte> encode_effect(std::tuple<A...>& args,
                                              const Extra&... result) {
    return std::apply(
        [&](const auto&... as) {
          return serial::encode(serial::Format::kCompact, as..., result...);
        },
        args);
  }

  template <class R, class... A>
  std::string make_key(aop::CallInvocation<T, R, A...>& inv,
                       KeyScope key_scope) const {
    std::string key;
    const aop::Signature& sig = inv.signature();
    key.append(sig.class_name);
    key.push_back('.');
    key.append(sig.method_name);
    key.push_back('\0');
    if (key_scope == KeyScope::kPerTarget) {
      const void* id = inv.target().identity();
      key.append(reinterpret_cast<const char*>(&id), sizeof id);
    }
    key.push_back('\0');
    const auto arg_bytes = std::apply(
        [](const auto&... as) {
          return serial::encode(serial::Format::kCompact, as...);
        },
        inv.args());
    key.append(reinterpret_cast<const char*>(arg_bytes.data()),
               arg_bytes.size());
    return key;
  }

  Options options_;
  Store store_;
};

}  // namespace apar::cache
