#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace apar::obs {
class Counter;
class Gauge;
}  // namespace apar::obs

namespace apar::cache {

/// Cache traffic counters, exposed like cluster::MiddlewareStats: one
/// relaxed atomic per event class so tests and dashboards can assert on
/// exactly what the cache did. Counter semantics (the contract the
/// model-based test replays against a reference implementation):
///
///   gets        lookups of any flavour (get / get_or_compute)
///   hits        lookups answered from a live entry
///   misses      lookups that found nothing usable (absent or expired);
///               get_or_compute counts the computing leader here
///   coalesced   get_or_compute callers that waited on another thread's
///               in-flight computation instead of recomputing (neither a
///               hit nor a miss: the entry did not exist yet, but no
///               second compute ran either)
///   inserts     put() calls and successful leader computations (an
///               overwrite of a live key counts — it replaces the value)
///   evictions   entries removed to satisfy the entry or byte bound
///   expiries    entries removed because their TTL had lapsed
///   erases      explicit erase() removals
///
/// Exactness invariant (asserted by tests/cache):
///   gets == hits + misses + coalesced
struct CacheStats {
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> expiries{0};
  std::atomic<std::uint64_t> erases{0};

  /// Copyable point-in-time view (same pattern as MiddlewareStats: the
  /// snapshot is the one place that enumerates the fields).
  struct Snapshot {
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expiries = 0;
    std::uint64_t erases = 0;

    Snapshot& operator+=(const Snapshot& other) {
      gets += other.gets;
      hits += other.hits;
      misses += other.misses;
      coalesced += other.coalesced;
      inserts += other.inserts;
      evictions += other.evictions;
      expiries += other.expiries;
      erases += other.erases;
      return *this;
    }
    friend Snapshot operator+(Snapshot a, const Snapshot& b) {
      a += b;
      return a;
    }
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.gets = gets.load(std::memory_order_relaxed);
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.coalesced = coalesced.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.expiries = expiries.load(std::memory_order_relaxed);
    s.erases = erases.load(std::memory_order_relaxed);
    return s;
  }
};

/// MetricsRegistry mirrors of CacheStats, labelled {"cache": <name>}:
/// cache.hits / cache.misses / cache.coalesced / cache.evictions /
/// cache.expiries (counters) and cache.entries / cache.bytes (gauges).
/// All members are null unless obs::metrics_enabled() when make() ran —
/// the same latched gate every other substrate probe uses, so an
/// unobserved cache pays one null test per event and registers nothing.
struct CacheProbes {
  std::shared_ptr<obs::Counter> hits;
  std::shared_ptr<obs::Counter> misses;
  std::shared_ptr<obs::Counter> coalesced;
  std::shared_ptr<obs::Counter> evictions;
  std::shared_ptr<obs::Counter> expiries;
  std::shared_ptr<obs::Gauge> entries;
  std::shared_ptr<obs::Gauge> bytes;

  [[nodiscard]] bool enabled() const { return hits != nullptr; }

  /// Resolve the probe set for cache `name` from the global registry;
  /// returns an all-null set when metrics are disabled.
  static CacheProbes make(const std::string& name);
};

}  // namespace apar::cache
