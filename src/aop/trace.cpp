#include "apar/aop/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "apar/common/json.hpp"

namespace apar::aop {

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

std::size_t Tracer::thread_count() const {
  std::lock_guard lock(mutex_);
  std::set<std::thread::id> threads;
  for (const auto& e : events_) threads.insert(e.thread);
  return threads.size();
}

std::size_t Tracer::calls(std::string_view signature) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.phase == TraceEvent::Phase::kEnter && e.signature == signature)
      ++n;
  }
  return n;
}

std::size_t Tracer::targets(std::string_view signature) const {
  std::lock_guard lock(mutex_);
  std::set<const void*> targets;
  for (const auto& e : events_) {
    if (e.signature == signature && e.target != nullptr)
      targets.insert(e.target);
  }
  return targets.size();
}

std::string Tracer::interaction_diagram() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  std::map<std::thread::id, std::size_t> thread_labels;
  std::map<const void*, char> object_labels;
  auto thread_label = [&](std::thread::id id) {
    auto [it, inserted] = thread_labels.emplace(id, thread_labels.size() + 1);
    (void)inserted;
    return "T" + std::to_string(it->second);
  };
  auto object_label = [&](const void* target) -> std::string {
    if (!target) return "-";
    auto [it, inserted] = object_labels.emplace(
        target, static_cast<char>('A' + (object_labels.size() % 26)));
    (void)inserted;
    return std::string(1, it->second);
  };

  std::ostringstream os;
  os << "  t(us)  thread  obj  event\n";
  const auto t0 = snapshot.empty()
                      ? std::chrono::steady_clock::time_point{}
                      : snapshot.front().when;
  for (const auto& e : snapshot) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(e.when - t0)
            .count();
    const char* arrow = e.phase == TraceEvent::Phase::kEnter  ? "->"
                        : e.phase == TraceEvent::Phase::kExit ? "<-"
                                                              : "!!";
    // Stream formatting (not a fixed buffer): signatures of any length
    // render intact.
    os << std::setw(7) << us << "  " << std::left << std::setw(6)
       << thread_label(e.thread) << "  " << std::setw(3)
       << object_label(e.target) << std::right << "  " << arrow << ' '
       << e.signature << '\n';
  }
  return os.str();
}

std::vector<TraceSpan> Tracer::spans() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  std::map<std::thread::id, std::vector<std::size_t>> open_by_thread;
  std::vector<TraceSpan> spans;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    auto& stack = open_by_thread[e.thread];
    if (e.phase == TraceEvent::Phase::kEnter) {
      stack.push_back(i);
      continue;
    }
    // Close the innermost open enter with the same signature (an exception
    // unwinding through nested traced calls emits kError per level, so a
    // plain top-of-stack pop would still pair correctly; matching on the
    // signature shields against interleaved aspect-emitted events).
    for (std::size_t s = stack.size(); s-- > 0;) {
      const TraceEvent& enter = snapshot[stack[s]];
      if (enter.signature != e.signature) continue;
      TraceSpan span;
      span.signature = enter.signature;
      span.thread = e.thread;
      span.target = enter.target ? enter.target : e.target;
      span.start = enter.when;
      span.duration = std::chrono::duration_cast<std::chrono::microseconds>(
          e.when - enter.when);
      span.error = e.phase == TraceEvent::Phase::kError;
      spans.push_back(std::move(span));
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(s));
      break;
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start < b.start;
                   });
  return spans;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  // Compact tids in order of first appearance — same labelling rule as the
  // interaction diagram (T1, T2, ...).
  std::map<std::thread::id, int> tids;
  for (const auto& e : snapshot) tids.emplace(e.thread, 0);
  {
    int next = 1;
    for (auto& e : snapshot) {
      auto& tid = tids[e.thread];
      if (tid == 0) tid = next++;
    }
  }
  const auto t0 = snapshot.empty() ? std::chrono::steady_clock::time_point{}
                                   : snapshot.front().when;
  auto rel_us = [&](std::chrono::steady_clock::time_point tp) {
    return std::chrono::duration_cast<std::chrono::microseconds>(tp - t0)
        .count();
  };

  std::ostringstream os;
  os << '[';
  bool first = true;
  std::vector<std::pair<int, std::thread::id>> ordered;
  for (const auto& [id, tid] : tids) ordered.emplace_back(tid, id);
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [tid, id] : ordered) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"T" << tid << "\"}}";
  }
  for (const auto& span : spans()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << common::json_escape(span.signature)
       << "\",\"cat\":\"apar\",\"ph\":\"X\",\"ts\":" << rel_us(span.start)
       << ",\"dur\":" << span.duration.count()
       << ",\"pid\":0,\"tid\":" << tids[span.thread];
    if (span.error) os << ",\"args\":{\"error\":true}";
    os << '}';
  }
  os << ']';
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << chrome_trace_json() << '\n';
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

std::string Tracer::summary() const {
  std::vector<TraceEvent> snapshot = events();
  struct Counts {
    std::size_t calls = 0;
    std::set<const void*> targets;
    std::set<std::thread::id> threads;
  };
  std::map<std::string, Counts> by_signature;
  for (const auto& e : snapshot) {
    auto& c = by_signature[e.signature];
    if (e.phase == TraceEvent::Phase::kEnter) ++c.calls;
    if (e.target) c.targets.insert(e.target);
    c.threads.insert(e.thread);
  }
  std::ostringstream os;
  for (const auto& [signature, c] : by_signature) {
    os << "  " << signature << ": " << c.calls << " call(s) on "
       << c.targets.size() << " object(s) from " << c.threads.size()
       << " thread(s)\n";
  }
  return os.str();
}

}  // namespace apar::aop
