#include "apar/aop/trace.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace apar::aop {

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

std::size_t Tracer::thread_count() const {
  std::lock_guard lock(mutex_);
  std::set<std::thread::id> threads;
  for (const auto& e : events_) threads.insert(e.thread);
  return threads.size();
}

std::size_t Tracer::calls(std::string_view signature) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.phase == TraceEvent::Phase::kEnter && e.signature == signature)
      ++n;
  }
  return n;
}

std::size_t Tracer::targets(std::string_view signature) const {
  std::lock_guard lock(mutex_);
  std::set<const void*> targets;
  for (const auto& e : events_) {
    if (e.signature == signature && e.target != nullptr)
      targets.insert(e.target);
  }
  return targets.size();
}

std::string Tracer::interaction_diagram() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  std::map<std::thread::id, std::size_t> thread_labels;
  std::map<const void*, char> object_labels;
  auto thread_label = [&](std::thread::id id) {
    auto [it, inserted] = thread_labels.emplace(id, thread_labels.size() + 1);
    (void)inserted;
    return "T" + std::to_string(it->second);
  };
  auto object_label = [&](const void* target) -> std::string {
    if (!target) return "-";
    auto [it, inserted] = object_labels.emplace(
        target, static_cast<char>('A' + (object_labels.size() % 26)));
    (void)inserted;
    return std::string(1, it->second);
  };

  std::ostringstream os;
  os << "  t(us)  thread  obj  event\n";
  const auto t0 = snapshot.empty()
                      ? std::chrono::steady_clock::time_point{}
                      : snapshot.front().when;
  for (const auto& e : snapshot) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(e.when - t0)
            .count();
    const char* arrow = e.phase == TraceEvent::Phase::kEnter  ? "->"
                        : e.phase == TraceEvent::Phase::kExit ? "<-"
                                                              : "!!";
    char line[160];
    std::snprintf(line, sizeof line, "%7lld  %-6s  %-3s  %s %s\n",
                  static_cast<long long>(us),
                  thread_label(e.thread).c_str(),
                  object_label(e.target).c_str(), arrow,
                  e.signature.c_str());
    os << line;
  }
  return os.str();
}

std::string Tracer::summary() const {
  std::vector<TraceEvent> snapshot = events();
  struct Counts {
    std::size_t calls = 0;
    std::set<const void*> targets;
    std::set<std::thread::id> threads;
  };
  std::map<std::string, Counts> by_signature;
  for (const auto& e : snapshot) {
    auto& c = by_signature[e.signature];
    if (e.phase == TraceEvent::Phase::kEnter) ++c.calls;
    if (e.target) c.targets.insert(e.target);
    c.threads.insert(e.thread);
  }
  std::ostringstream os;
  for (const auto& [signature, c] : by_signature) {
    os << "  " << signature << ": " << c.calls << " call(s) on "
       << c.targets.size() << " object(s) from " << c.threads.size()
       << " thread(s)\n";
  }
  return os.str();
}

}  // namespace apar::aop
