#include "apar/aop/aspect.hpp"

#include <algorithm>

namespace apar::aop {

namespace detail {

AspectStack& tls_aspect_stack() {
  thread_local AspectStack stack;
  return stack;
}

Frame::Frame(const Aspect* aspect) { tls_aspect_stack().push_back(aspect); }

Frame::~Frame() { tls_aspect_stack().pop_back(); }

StackRestore::StackRestore(AspectStack snapshot) {
  saved_ = std::exchange(tls_aspect_stack(), std::move(snapshot));
}

StackRestore::~StackRestore() { tls_aspect_stack() = std::move(saved_); }

bool advice_admitted(const AdviceBase& adv, const AspectStack& snapshot) {
  return adv.owner()->enabled() && adv.scope().admits(snapshot);
}

}  // namespace detail

bool Scope::admits(const std::vector<const Aspect*>& stack) const {
  switch (mode_) {
    case Mode::kAny:
      return true;
    case Mode::kCoreOnly:
      return stack.empty();
    case Mode::kWithin:
      return std::any_of(stack.begin(), stack.end(), [&](const Aspect* a) {
        return a->name() == name_;
      });
    case Mode::kNotWithin:
      return std::none_of(stack.begin(), stack.end(), [&](const Aspect* a) {
        return a->name() == name_;
      });
  }
  return true;
}

}  // namespace apar::aop
