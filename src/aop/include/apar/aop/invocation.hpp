#pragma once

#include <functional>
#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "apar/aop/advice.hpp"
#include "apar/aop/ref.hpp"
#include "apar/aop/signature.hpp"

namespace apar::aop {

class Context;
class Aspect;

namespace detail {

/// Thread-local stack of aspect frames; the runtime realisation of the
/// paper's `within()` pointcut scoping. Advice bodies run inside a Frame
/// for their owning aspect; calls they make see that frame on the stack.
using AspectStack = std::vector<const Aspect*>;
using SnapshotPtr = std::shared_ptr<const AspectStack>;
AspectStack& tls_aspect_stack();

class Frame {
 public:
  explicit Frame(const Aspect* aspect);
  ~Frame();
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;
};

/// Replaces the current thread's stack with a snapshot (for detached
/// continuations running on worker threads); restores on destruction.
class StackRestore {
 public:
  explicit StackRestore(AspectStack snapshot);
  ~StackRestore();
  StackRestore(const StackRestore&) = delete;
  StackRestore& operator=(const StackRestore&) = delete;

 private:
  AspectStack saved_;
};

/// Traits over a member-function pointer: R (C::*)(A...) [const].
template <class M>
struct MemberFnTraits;

template <class C, class R, class... A>
struct MemberFnTraits<R (C::*)(A...)> {
  using Class = C;
  using Ret = R;
  using ArgsTuple = std::tuple<A...>;
};

template <class C, class R, class... A>
struct MemberFnTraits<R (C::*)(A...) const> {
  using Class = C;
  using Ret = R;
  using ArgsTuple = std::tuple<A...>;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Method-call join points
// ---------------------------------------------------------------------------

template <class T, class R, class... A>
class CallInvocation;

/// Typed around-advice on method calls with shape R (T::*)(A...).
template <class T, class R, class... A>
class CallAdvice final : public AdviceBase {
 public:
  using Fn = std::function<R(CallInvocation<T, R, A...>&)>;

  CallAdvice(Aspect* owner, Pattern pattern, int order, Scope scope, Fn fn)
      : AdviceBase(owner, JoinPointKind::kMethodCall, std::move(pattern),
                   order, std::move(scope)),
        fn(std::move(fn)) {}

  Fn fn;
};

namespace detail {
/// Advice chain snapshot taken at call initiation. Holding the owning
/// aspects keeps advice alive even if an aspect is detached mid-call.
template <class AdvT>
struct Chain {
  std::vector<AdvT*> advice;  // sorted by ascending order value
  std::vector<std::shared_ptr<Aspect>> keepalive;
};

bool advice_admitted(const AdviceBase& adv, const AspectStack& snapshot);
}  // namespace detail

/// The reified join point handed to method-call around advice.
///
/// Advice may:
///   - `proceed()` — run the rest of the chain with the current target/args;
///   - `proceed(newArgs...)` — run the rest of the chain with other
///     arguments. Calling proceed more than once performs the paper's
///     *method call split* (§4.1, Figure 5);
///   - `retarget(ref)` — make subsequent proceeds hit a different object
///     (the farm's worker-selection, §5.2);
///   - `continuation()` — capture the rest of the chain as a heap closure
///     with arguments copied by value, so the concurrency aspect can run it
///     on another thread (the paper's `new Thread() { proceed(); }`);
///   - return without proceeding — the call is replaced (distribution).
template <class T, class R, class... A>
class CallInvocation {
 public:
  using AdviceT = CallAdvice<T, R, A...>;
  using ChainT = detail::Chain<AdviceT>;
  using Terminal = std::function<R(Context&, Ref<T>&, A...)>;
  using Snapshot = detail::SnapshotPtr;

  CallInvocation(Context& ctx, Signature sig,
                 std::shared_ptr<const ChainT> chain, std::size_t index,
                 Ref<T> target, std::tuple<A...>& args,
                 const Terminal& terminal, Snapshot snapshot)
      : ctx_(ctx),
        sig_(sig),
        chain_(std::move(chain)),
        index_(index),
        target_(std::move(target)),
        args_(&args),
        terminal_(&terminal),
        snapshot_(std::move(snapshot)) {}

  [[nodiscard]] Context& context() const { return ctx_; }
  [[nodiscard]] const Signature& signature() const { return sig_; }
  [[nodiscard]] Ref<T>& target() { return target_; }
  [[nodiscard]] std::tuple<A...>& args() { return *args_; }

  /// Continue the chain with the current target and arguments.
  R proceed() { return run(ctx_, sig_, chain_, index_ + 1, target_, *args_,
                           *terminal_, snapshot_); }

  /// Continue the chain with replacement arguments (may be called multiple
  /// times — each call runs an independent downstream chain).
  R proceed_with(A... new_args) {
    std::tuple<A...> t(std::forward<A>(new_args)...);
    return run(ctx_, sig_, chain_, index_ + 1, target_, t, *terminal_,
               snapshot_);
  }

  /// Subsequent proceeds (and continuations) dispatch to `target` instead.
  void retarget(Ref<T> target) { target_ = std::move(target); }

  /// Capture the remainder of the chain as a runnable closure. Arguments
  /// are copied by value (CP.31: pass small amounts of data between threads
  /// by value); reference parameters bind to the copies.
  [[nodiscard]] std::function<void()> continuation() {
    static_assert(std::is_void_v<R>,
                  "continuation() requires a void method; value-returning "
                  "asynchronous calls go through Context::call_future");
    auto args_copy =
        std::make_shared<std::tuple<std::decay_t<A>...>>(*args_);
    return [ctx = &ctx_, sig = sig_, chain = chain_, index = index_ + 1,
            target = target_, terminal = *terminal_,
            snapshot = snapshot_, args_copy]() mutable {
      detail::StackRestore restore(*snapshot);
      std::apply(
          [&](auto&... vs) {
            std::tuple<A...> view(vs...);
            run(*ctx, sig, chain, index, target, view, terminal, snapshot);
          },
          *args_copy);
    };
  }

  /// Entry point used by Context: walk the chain from `from`, skipping
  /// disabled or out-of-scope advice, and fall through to the terminal.
  static R run(Context& ctx, Signature sig,
               const std::shared_ptr<const ChainT>& chain, std::size_t from,
               Ref<T> target, std::tuple<A...>& args, const Terminal& terminal,
               const Snapshot& snapshot) {
    for (std::size_t i = from; i < chain->advice.size(); ++i) {
      AdviceT* adv = chain->advice[i];
      if (!detail::advice_admitted(*adv, *snapshot)) continue;
      CallInvocation inv(ctx, sig, chain, i, std::move(target), args, terminal,
                         snapshot);
      detail::Frame frame(adv->owner());
      return adv->fn(inv);
    }
    return std::apply(
        [&](A... as) -> R {
          return terminal(ctx, target, std::forward<A>(as)...);
        },
        args);
  }

 private:
  Context& ctx_;
  Signature sig_;
  std::shared_ptr<const ChainT> chain_;
  std::size_t index_;
  Ref<T> target_;
  std::tuple<A...>* args_;
  const Terminal* terminal_;
  Snapshot snapshot_;
};

// ---------------------------------------------------------------------------
// Constructor-call join points
// ---------------------------------------------------------------------------

template <class T, class... A>
class CtorInvocation;

/// Typed around-advice on constructor calls `T(A...)` (argument types are
/// the decayed types of the creation expression).
template <class T, class... A>
class CtorAdvice final : public AdviceBase {
 public:
  using Fn = std::function<Ref<T>(CtorInvocation<T, A...>&)>;

  CtorAdvice(Aspect* owner, Pattern pattern, int order, Scope scope, Fn fn)
      : AdviceBase(owner, JoinPointKind::kConstructorCall, std::move(pattern),
                   order, std::move(scope)),
        fn(std::move(fn)) {}

  Fn fn;
};

/// The reified join point handed to constructor-call around advice.
///
/// `proceed()`/`proceed_with()` run the rest of the chain and yield a Ref.
/// Calling proceed several times performs the paper's *object duplication*
/// (§4.1, Figure 4): one creation in core functionality becomes a set of
/// aspect-managed objects, each of which still flows through downstream
/// aspects (notably distribution, which may place it on a remote node).
template <class T, class... A>
class CtorInvocation {
 public:
  using AdviceT = CtorAdvice<T, A...>;
  using ChainT = detail::Chain<AdviceT>;
  using Terminal = std::function<Ref<T>(Context&, A&...)>;
  using Snapshot = detail::SnapshotPtr;

  CtorInvocation(Context& ctx, Signature sig,
                 std::shared_ptr<const ChainT> chain, std::size_t index,
                 std::tuple<A...>& args, const Terminal& terminal,
                 Snapshot snapshot)
      : ctx_(ctx),
        sig_(sig),
        chain_(std::move(chain)),
        index_(index),
        args_(&args),
        terminal_(&terminal),
        snapshot_(std::move(snapshot)) {}

  [[nodiscard]] Context& context() const { return ctx_; }
  [[nodiscard]] const Signature& signature() const { return sig_; }
  [[nodiscard]] std::tuple<A...>& args() { return *args_; }

  Ref<T> proceed() {
    return run(ctx_, sig_, chain_, index_ + 1, *args_, *terminal_, snapshot_);
  }

  Ref<T> proceed_with(A... new_args) {
    std::tuple<A...> t(std::move(new_args)...);
    return run(ctx_, sig_, chain_, index_ + 1, t, *terminal_, snapshot_);
  }

  static Ref<T> run(Context& ctx, Signature sig,
                    const std::shared_ptr<const ChainT>& chain,
                    std::size_t from, std::tuple<A...>& args,
                    const Terminal& terminal, const Snapshot& snapshot) {
    for (std::size_t i = from; i < chain->advice.size(); ++i) {
      AdviceT* adv = chain->advice[i];
      if (!detail::advice_admitted(*adv, *snapshot)) continue;
      CtorInvocation inv(ctx, sig, chain, i, args, terminal, snapshot);
      detail::Frame frame(adv->owner());
      return adv->fn(inv);
    }
    return std::apply([&](A&... as) { return terminal(ctx, as...); }, args);
  }

 private:
  Context& ctx_;
  Signature sig_;
  std::shared_ptr<const ChainT> chain_;
  std::size_t index_;
  std::tuple<A...>* args_;
  const Terminal* terminal_;
  Snapshot snapshot_;
};

}  // namespace apar::aop
