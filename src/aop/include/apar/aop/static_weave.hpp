#pragma once

#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::aop {

/// Process-wide table of every join-point signature the weave layer knows
/// about: each APAR_CLASS_NAME registers "Class.new" and each
/// APAR_METHOD_NAME registers "Class.method" at static-initialisation
/// time, and statically woven ct::Woven calls register on first use. This
/// is the ground truth the weave-plan analyzer (apar-analyze) matches
/// pointcut patterns against — a plugged pattern that matches nothing in
/// this table is a dead pointcut, the runtime analogue of AspectJ's
/// weave-time "advice not applied" diagnostic.
class SignatureRegistry {
 public:
  static SignatureRegistry& global();

  SignatureRegistry(const SignatureRegistry&) = delete;
  SignatureRegistry& operator=(const SignatureRegistry&) = delete;

  /// Idempotently add a signature; names are interned so the returned
  /// Signatures' string_views stay valid for the process lifetime.
  bool add(std::string_view class_name, std::string_view method_name,
           JoinPointKind kind);

  [[nodiscard]] std::vector<Signature> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool contains(const Signature& sig) const;

 private:
  SignatureRegistry() = default;

  struct Entry {
    std::string class_name;
    std::string method_name;
    JoinPointKind kind;
  };

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace apar::aop

namespace apar::aop::ct {

/// Compile-time weaving — the AspectC++-style counterpart to the runtime
/// Context. Used by the weaving-overhead ablation (bench/weaving_micro) to
/// separate "cost of the aspect abstraction" from "cost of dynamic
/// pluggability": a statically woven call chain inlines completely.
///
/// A *static aspect* is a type exposing:
///
///   struct Timing {
///     template <class Next, class T, class... A>
///     static auto around(Next&& next, T& obj, A&&... args) {
///       ...;                                   // before
///       auto r = next(std::forward<A>(args)...);  // proceed
///       ...;                                   // after
///       return r;
///     }
///   };
///
/// Aspects listed first are outermost, matching the runtime weaver's
/// ascending-order convention.
namespace detail {

template <auto M, class T, class... Aspects>
struct ChainRunner;

template <auto M, class T>
struct ChainRunner<M, T> {
  template <class... A>
  static decltype(auto) run(T& obj, A&&... args) {
    return (obj.*M)(std::forward<A>(args)...);
  }
};

template <auto M, class T, class First, class... Rest>
struct ChainRunner<M, T, First, Rest...> {
  template <class... A>
  static decltype(auto) run(T& obj, A&&... args) {
    auto next = [&obj](auto&&... as) -> decltype(auto) {
      return ChainRunner<M, T, Rest...>::run(
          obj, std::forward<decltype(as)>(as)...);
    };
    return First::around(next, obj, std::forward<A>(args)...);
  }
};

}  // namespace detail

/// An instance of T whose exposed calls are statically woven through the
/// given aspects.
template <class T, class... Aspects>
class Woven {
 public:
  template <class... CtorArgs>
  explicit Woven(CtorArgs&&... args) : obj_(std::forward<CtorArgs>(args)...) {}

  [[nodiscard]] T& object() { return obj_; }
  [[nodiscard]] const T& object() const { return obj_; }

  /// Statically woven call of method M. The first call of each
  /// instantiation publishes the signature to the SignatureRegistry, so
  /// statically woven join points are visible to apar-analyze too.
  template <auto M, class... A>
  decltype(auto) call(A&&... args) {
    static const bool registered = SignatureRegistry::global().add(
        class_name_of<T>(), method_name_of<M>(), JoinPointKind::kMethodCall);
    (void)registered;
    return detail::ChainRunner<M, T, Aspects...>::run(
        obj_, std::forward<A>(args)...);
  }

 private:
  T obj_;
};

/// Static crosscutting (paper §3, Figure 2): introduce members and base
/// interfaces into a class without editing it. Each mixin is a CRTP
/// template; `Introduce<Point, Migratable>` is a Point that additionally
/// has every Migratable<...> member.
template <class T, template <class> class... Mixins>
struct Introduce final : T, Mixins<Introduce<T, Mixins...>>... {
  using T::T;
};

}  // namespace apar::aop::ct
