#pragma once

#include <type_traits>
#include <utility>

namespace apar::aop::ct {

/// Compile-time weaving — the AspectC++-style counterpart to the runtime
/// Context. Used by the weaving-overhead ablation (bench/weaving_micro) to
/// separate "cost of the aspect abstraction" from "cost of dynamic
/// pluggability": a statically woven call chain inlines completely.
///
/// A *static aspect* is a type exposing:
///
///   struct Timing {
///     template <class Next, class T, class... A>
///     static auto around(Next&& next, T& obj, A&&... args) {
///       ...;                                   // before
///       auto r = next(std::forward<A>(args)...);  // proceed
///       ...;                                   // after
///       return r;
///     }
///   };
///
/// Aspects listed first are outermost, matching the runtime weaver's
/// ascending-order convention.
namespace detail {

template <auto M, class T, class... Aspects>
struct ChainRunner;

template <auto M, class T>
struct ChainRunner<M, T> {
  template <class... A>
  static decltype(auto) run(T& obj, A&&... args) {
    return (obj.*M)(std::forward<A>(args)...);
  }
};

template <auto M, class T, class First, class... Rest>
struct ChainRunner<M, T, First, Rest...> {
  template <class... A>
  static decltype(auto) run(T& obj, A&&... args) {
    auto next = [&obj](auto&&... as) -> decltype(auto) {
      return ChainRunner<M, T, Rest...>::run(
          obj, std::forward<decltype(as)>(as)...);
    };
    return First::around(next, obj, std::forward<A>(args)...);
  }
};

}  // namespace detail

/// An instance of T whose exposed calls are statically woven through the
/// given aspects.
template <class T, class... Aspects>
class Woven {
 public:
  template <class... CtorArgs>
  explicit Woven(CtorArgs&&... args) : obj_(std::forward<CtorArgs>(args)...) {}

  [[nodiscard]] T& object() { return obj_; }
  [[nodiscard]] const T& object() const { return obj_; }

  /// Statically woven call of method M.
  template <auto M, class... A>
  decltype(auto) call(A&&... args) {
    return detail::ChainRunner<M, T, Aspects...>::run(
        obj_, std::forward<A>(args)...);
  }

 private:
  T obj_;
};

/// Static crosscutting (paper §3, Figure 2): introduce members and base
/// interfaces into a class without editing it. Each mixin is a CRTP
/// template; `Introduce<Point, Migratable>` is a Point that additionally
/// has every Migratable<...> member.
template <class T, template <class> class... Mixins>
struct Introduce final : T, Mixins<Introduce<T, Mixins...>>... {
  using T::T;
};

}  // namespace apar::aop::ct
