#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::aop {

class Aspect;

/// Canonical advice ordering used by the shipped parallelisation aspects.
///
/// This reproduces the weaving order implied by the paper's Figures 7 and
/// 11: a core call is first *split* by the partition aspect, each resulting
/// call is made *asynchronous* by the concurrency aspect, the thread then
/// runs the partition's *forward/route* advice, the per-object *monitor* is
/// taken, optimisations apply, and finally the *distribution* aspect either
/// dispatches locally or redirects to the middleware. Lower values run
/// further out (earlier).
namespace order {
inline constexpr int kPartitionSplit = 100;
inline constexpr int kConcurrencyAsync = 200;
inline constexpr int kPartitionForward = 300;  ///< forward / route / retarget
inline constexpr int kConcurrencySync = 400;
inline constexpr int kOptimisation = 450;
inline constexpr int kDistribution = 500;
inline constexpr int kDefault = 350;
}  // namespace order

/// Lexical-scope restriction on a pointcut — the AspectJ `within()` /
/// `!within()` analogue the paper relies on: the partition's *split* advice
/// only applies to calls made from core functionality (block 2), while its
/// *forward* advice applies recursively to aspect-made calls too (block 3).
class Scope {
 public:
  /// Applies to every call regardless of where it was initiated.
  static Scope any() { return Scope(Mode::kAny, {}); }
  /// Applies only to calls initiated outside any advice ("core code").
  static Scope core_only() { return Scope(Mode::kCoreOnly, {}); }
  /// Applies only when the named aspect is on the initiation stack.
  static Scope within(std::string aspect_name) {
    return Scope(Mode::kWithin, std::move(aspect_name));
  }
  /// Applies only when the named aspect is NOT on the initiation stack.
  static Scope not_within(std::string aspect_name) {
    return Scope(Mode::kNotWithin, std::move(aspect_name));
  }

  /// Evaluate against the aspect-frame stack active when the call started.
  [[nodiscard]] bool admits(const std::vector<const Aspect*>& stack) const;

 private:
  enum class Mode { kAny, kCoreOnly, kWithin, kNotWithin };
  Scope(Mode mode, std::string name) : mode_(mode), name_(std::move(name)) {}

  Mode mode_;
  std::string name_;
};

/// One argument (or result) a distribution-style advice would put on the
/// wire, as declared for the weave-plan analyzer: its readable wire name
/// and whether src/serial knows how to encode it.
struct WireArg {
  std::string type_name;
  bool serializable = false;
};

/// Type-erased advice record. Typed subclasses carry the actual functor;
/// matching at a call site filters by (a) dynamic type of the invocation,
/// (b) signature pattern, and — per invocation — (c) scope.
///
/// Advice additionally carries *effect* metadata declared by the aspect
/// that registered it (monitor acquisition, wire marshalling). The weaver
/// never reads it; it exists so the weave-plan analyzer can detect
/// double-synchronisation and unserializable-argument hazards without
/// executing the plan.
class AdviceBase {
 public:
  AdviceBase(Aspect* owner, JoinPointKind kind, Pattern pattern, int order,
             Scope scope)
      : owner_(owner),
        kind_(kind),
        pattern_(std::move(pattern)),
        order_(order),
        scope_(std::move(scope)) {}
  virtual ~AdviceBase() = default;

  AdviceBase(const AdviceBase&) = delete;
  AdviceBase& operator=(const AdviceBase&) = delete;

  [[nodiscard]] Aspect* owner() const { return owner_; }
  [[nodiscard]] JoinPointKind kind() const { return kind_; }
  [[nodiscard]] const Pattern& pattern() const { return pattern_; }
  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] const Scope& scope() const { return scope_; }

  [[nodiscard]] bool matches(const Signature& sig) const {
    return kind_ == sig.kind && pattern_.matches(sig);
  }

  // --- analysis metadata (declared effects) -----------------------------

  /// Declare that this advice takes a per-object monitor around proceed().
  AdviceBase& mark_acquires_monitor() {
    acquires_monitor_ = true;
    return *this;
  }
  [[nodiscard]] bool acquires_monitor() const { return acquires_monitor_; }

  /// Declare that this advice marshals the join point's arguments (and
  /// result) onto a wire, listing each type it would have to encode.
  /// `wire_mandatory` distinguishes a real wire (TCP: encoding MUST work or
  /// the call cannot leave the process) from the in-process simulation
  /// (encoding failures are a fidelity gap, not a correctness bug); the
  /// weave-plan analyzer grades unserializable-argument hazards
  /// accordingly.
  AdviceBase& mark_distributes(std::vector<WireArg> args,
                               bool wire_mandatory = false) {
    distributes_ = true;
    wire_args_ = std::move(args);
    wire_mandatory_ = wire_mandatory;
    return *this;
  }
  [[nodiscard]] bool distributes() const { return distributes_; }
  [[nodiscard]] bool wire_mandatory() const { return wire_mandatory_; }
  [[nodiscard]] const std::vector<WireArg>& wire_args() const {
    return wire_args_;
  }

  /// Declare that this advice memoizes the join point, keyed on the
  /// serialized argument values. `args` lists every type the cache key and
  /// the recorded effect must encode (arguments plus a non-void result);
  /// `declared_idempotent` is the APAR_METHOD_IDEMPOTENT verdict for the
  /// advised method. The weaver never reads this — the weave-plan
  /// analyzer's cache-safety pass does: caching a method nobody declared
  /// idempotent, or one whose effect cannot be serialized, is a finding
  /// (escalated to an error when the join point is also distributed over a
  /// real wire transport).
  AdviceBase& mark_caches(std::vector<WireArg> args,
                          bool declared_idempotent) {
    caches_ = true;
    cache_args_ = std::move(args);
    cache_idempotent_ = declared_idempotent;
    return *this;
  }
  [[nodiscard]] bool caches() const { return caches_; }
  [[nodiscard]] bool cache_idempotent() const { return cache_idempotent_; }
  [[nodiscard]] const std::vector<WireArg>& cache_args() const {
    return cache_args_;
  }

  /// Declare that this advice moves the rest of the chain onto other
  /// threads (the concurrency aspect's async dispatch, a farm's fan-out):
  /// every join point it matches may execute concurrently with core code
  /// and with other advised calls under this weave plan. The effect
  /// analyzer only considers signatures matched by a spawning advice as
  /// race candidates — everything else runs on the initiating thread in
  /// program phases separated by quiesce().
  ///
  /// `confined_to_target` records object confinement: each spawned
  /// execution drives a *distinct* target object (the dynamic farm's
  /// worker loops each own one worker). Declared state is per-instance,
  /// so confined concurrency cannot race on it and the analyzer skips
  /// such signatures unless an unconfined spawner also matches.
  AdviceBase& mark_spawns_concurrency(bool confined_to_target = false) {
    spawns_concurrency_ = true;
    spawn_confined_ = confined_to_target;
    return *this;
  }
  [[nodiscard]] bool spawns_concurrency() const { return spawns_concurrency_; }
  [[nodiscard]] bool spawn_confined_to_target() const {
    return spawn_confined_;
  }

  /// Declare that this advice ADAPTS the parallelism behind the join
  /// points it matches at runtime (worker count, grain, feeder depth),
  /// naming each knob it actuates. The weaver never reads it; the effects
  /// analyzer's adaptation-safety pass does: every concurrency-spawning
  /// advice on a signature an adapter also matches must declare
  /// mark_online_resizable(), otherwise resizing mid-flight can orphan or
  /// double-run work and the analyzer reports kAdaptationUnsafeResize.
  AdviceBase& mark_adapts(std::vector<std::string> knobs) {
    adapts_ = true;
    adapt_knobs_ = std::move(knobs);
    return *this;
  }
  [[nodiscard]] bool adapts() const { return adapts_; }
  [[nodiscard]] const std::vector<std::string>& adapt_knobs() const {
    return adapt_knobs_;
  }

  /// Declare that the concurrency this advice spawns tolerates an online
  /// resize of its degree: workers can be added or retired between tasks
  /// without losing or re-running accepted work (the work-stealing pool's
  /// cooperative-retirement contract, the farm's per-pack fan-out).
  AdviceBase& mark_online_resizable() {
    online_resizable_ = true;
    return *this;
  }
  [[nodiscard]] bool online_resizable() const { return online_resizable_; }

  /// Declare that this advice's body initiates calls matching the given
  /// signature patterns while the original join point is still on the
  /// stack (bridge / forwarding advice). A monitor taken outside this
  /// advice is therefore held across every initiated call — the static
  /// lock-order pass turns that into may-acquire edges and reports cycles
  /// without running the program.
  AdviceBase& mark_initiates(std::vector<std::string> patterns) {
    for (const std::string& p : patterns) initiates_.emplace_back(p);
    return *this;
  }
  [[nodiscard]] const std::vector<Pattern>& initiates() const {
    return initiates_;
  }

 private:
  Aspect* owner_;
  JoinPointKind kind_;
  Pattern pattern_;
  int order_;
  Scope scope_;
  bool acquires_monitor_ = false;
  bool distributes_ = false;
  bool wire_mandatory_ = false;
  std::vector<WireArg> wire_args_;
  bool caches_ = false;
  bool cache_idempotent_ = false;
  std::vector<WireArg> cache_args_;
  bool spawns_concurrency_ = false;
  bool spawn_confined_ = false;
  bool adapts_ = false;
  std::vector<std::string> adapt_knobs_;
  bool online_resizable_ = false;
  std::vector<Pattern> initiates_;
};

}  // namespace apar::aop
