#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apar/aop/aspect.hpp"

namespace apar::aop {

/// One observed join-point execution boundary.
struct TraceEvent {
  enum class Phase { kEnter, kExit, kError };

  std::chrono::steady_clock::time_point when;
  std::thread::id thread;
  std::string signature;   ///< "Class.method" ("Class.new" for creations)
  const void* target = nullptr;  ///< Ref identity (null for creations)
  Phase phase = Phase::kEnter;
};

/// One completed join-point execution: a matched enter/exit (or
/// enter/error) pair on a single thread, with its wall-clock duration.
struct TraceSpan {
  std::string signature;
  std::thread::id thread;
  const void* target = nullptr;
  std::chrono::steady_clock::time_point start;
  std::chrono::microseconds duration{0};
  bool error = false;  ///< closed by Phase::kError (exception unwound)
};

/// Thread-safe event sink shared by TraceAspects, able to render the
/// paper's interaction diagrams (Figures 6, 7 and 11) as text — the
/// methodology's "easier to understand overall parallelism structure"
/// claim, made checkable — and to export the same run as a Chrome
/// `trace_event` JSON array loadable in Perfetto / chrome://tracing.
class Tracer {
 public:
  void record(TraceEvent event);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Matched enter/exit pairs as duration spans, in start order. Matching
  /// is a per-thread stack keyed on signature, so nested and recursive
  /// join points pair correctly; still-open enters are omitted.
  [[nodiscard]] std::vector<TraceSpan> spans() const;

  /// Chrome `trace_event` JSON array: one thread-name metadata event per
  /// observed thread (T1, T2, ... in order of first appearance) followed by
  /// one complete ("ph":"X") event per span, timestamps in microseconds
  /// relative to the first recorded event. Load the file in Perfetto or
  /// chrome://tracing to see the woven run as a timeline.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Write chrome_trace_json() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_chrome_trace(const std::string& path) const;

  /// Distinct threads that executed traced join points.
  [[nodiscard]] std::size_t thread_count() const;

  /// Calls (enter events) observed for a signature.
  [[nodiscard]] std::size_t calls(std::string_view signature) const;

  /// Distinct targets a signature was executed on.
  [[nodiscard]] std::size_t targets(std::string_view signature) const;

  /// Text interaction diagram: one line per event, relative microsecond
  /// timestamps, compact thread (T1, T2, ...) and object (A, B, ...)
  /// labels, arrows for enter/exit.
  [[nodiscard]] std::string interaction_diagram() const;

  /// Per-signature call/target/thread counts.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// A pluggable tracing aspect for class T — the classic AOP demonstrator,
/// here doubling as the paper's debugging story: plug it to see the woven
/// interaction structure, unplug it to remove every trace probe.
///
/// Runs outermost (order 50 by default) so it observes calls as core
/// functionality issued them, before partition advice rewrites them; trace
/// a second instance at an inner order to see the woven structure instead.
template <class T>
class TraceAspect : public Aspect {
 public:
  TraceAspect(std::string name, std::shared_ptr<Tracer> tracer,
              int order = 50)
      : Aspect(std::move(name)), tracer_(std::move(tracer)), order_(order) {}

  explicit TraceAspect(std::shared_ptr<Tracer> tracer)
      : TraceAspect("Trace", std::move(tracer)) {}

  template <auto M>
  TraceAspect& trace_method() {
    this->template around_method<M>(
        order_, Scope::any(), [this](auto& inv) {
          const std::string sig = inv.signature().str();
          const void* target = inv.target().identity();
          tracer_->record({std::chrono::steady_clock::now(),
                           std::this_thread::get_id(), sig, target,
                           TraceEvent::Phase::kEnter});
          try {
            if constexpr (std::is_void_v<decltype(inv.proceed())>) {
              inv.proceed();
              tracer_->record({std::chrono::steady_clock::now(),
                               std::this_thread::get_id(), sig, target,
                               TraceEvent::Phase::kExit});
            } else {
              auto result = inv.proceed();
              tracer_->record({std::chrono::steady_clock::now(),
                               std::this_thread::get_id(), sig, target,
                               TraceEvent::Phase::kExit});
              return result;
            }
          } catch (...) {
            tracer_->record({std::chrono::steady_clock::now(),
                             std::this_thread::get_id(), sig, target,
                             TraceEvent::Phase::kError});
            throw;
          }
        });
    return *this;
  }

  /// Trace creations T(CtorArgs...).
  template <class... CtorArgs>
  TraceAspect& trace_new() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        order_, Scope::any(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          const std::string sig = inv.signature().str();
          tracer_->record({std::chrono::steady_clock::now(),
                           std::this_thread::get_id(), sig, nullptr,
                           TraceEvent::Phase::kEnter});
          auto ref = inv.proceed();
          tracer_->record({std::chrono::steady_clock::now(),
                           std::this_thread::get_id(), sig, ref.identity(),
                           TraceEvent::Phase::kExit});
          return ref;
        });
    return *this;
  }

  [[nodiscard]] const std::shared_ptr<Tracer>& tracer() const {
    return tracer_;
  }

 private:
  std::shared_ptr<Tracer> tracer_;
  int order_;
};

}  // namespace apar::aop
