#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

#include "apar/aop/aspect.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"

namespace apar::aop {

// The Tracer itself lives in src/obs since PR 7 so that layers below aop
// (the thread pool, the TCP transport) can record causal spans into it.
// These aliases keep every existing aop-facing spelling working.
using TraceEvent = obs::TraceEvent;
using TraceSpan = obs::TraceSpan;
using Tracer = obs::Tracer;

/// A pluggable tracing aspect for class T — the classic AOP demonstrator,
/// here doubling as the paper's debugging story: plug it to see the woven
/// interaction structure, unplug it to remove every trace probe.
///
/// Every traced join point opens a child span of whatever context is
/// current on the executing thread (a new root when none is), and installs
/// it for the duration of proceed() — so work the join point fans out
/// (thread-pool tasks, TCP calls) parents back to it, across steals and
/// across the wire.
///
/// Runs outermost (order 50 by default) so it observes calls as core
/// functionality issued them, before partition advice rewrites them; trace
/// a second instance at an inner order to see the woven structure instead.
template <class T>
class TraceAspect : public Aspect {
 public:
  TraceAspect(std::string name, std::shared_ptr<Tracer> tracer,
              int order = 50)
      : Aspect(std::move(name)), tracer_(std::move(tracer)), order_(order) {}

  explicit TraceAspect(std::shared_ptr<Tracer> tracer)
      : TraceAspect("Trace", std::move(tracer)) {}

  template <auto M>
  TraceAspect& trace_method() {
    this->template around_method<M>(
        order_, Scope::any(), [this](auto& inv) {
          const std::string sig = inv.signature().str();
          const void* target = inv.target().identity();
          obs::SpanScope span;
          tracer_->record({std::chrono::steady_clock::now(),
                           std::this_thread::get_id(), sig, target,
                           TraceEvent::Phase::kEnter, span.context()});
          try {
            if constexpr (std::is_void_v<decltype(inv.proceed())>) {
              inv.proceed();
              tracer_->record({std::chrono::steady_clock::now(),
                               std::this_thread::get_id(), sig, target,
                               TraceEvent::Phase::kExit, span.context()});
            } else {
              auto result = inv.proceed();
              tracer_->record({std::chrono::steady_clock::now(),
                               std::this_thread::get_id(), sig, target,
                               TraceEvent::Phase::kExit, span.context()});
              return result;
            }
          } catch (...) {
            tracer_->record({std::chrono::steady_clock::now(),
                             std::this_thread::get_id(), sig, target,
                             TraceEvent::Phase::kError, span.context()});
            throw;
          }
        });
    return *this;
  }

  /// Trace creations T(CtorArgs...).
  template <class... CtorArgs>
  TraceAspect& trace_new() {
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        order_, Scope::any(),
        [this](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          const std::string sig = inv.signature().str();
          obs::SpanScope span;
          tracer_->record({std::chrono::steady_clock::now(),
                           std::this_thread::get_id(), sig, nullptr,
                           TraceEvent::Phase::kEnter, span.context()});
          auto ref = inv.proceed();
          tracer_->record({std::chrono::steady_clock::now(),
                           std::this_thread::get_id(), sig, ref.identity(),
                           TraceEvent::Phase::kExit, span.context()});
          return ref;
        });
    return *this;
  }

  [[nodiscard]] const std::shared_ptr<Tracer>& tracer() const {
    return tracer_;
  }

 private:
  std::shared_ptr<Tracer> tracer_;
  int order_;
};

}  // namespace apar::aop
