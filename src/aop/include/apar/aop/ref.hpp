#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace apar::aop {

/// Raised when a call reaches local dispatch on a remote reference — i.e.
/// a distribution-managed object is used without the distribution aspect
/// plugged in (or with it ordered after dispatch).
class NotLocalError : public std::logic_error {
 public:
  explicit NotLocalError(const std::string& what) : std::logic_error(what) {}
};

/// Opaque handle to a remotely-placed object. The aop layer never looks
/// inside; the distribution aspect (strategies) and the cluster substrate
/// agree on the concrete type via dynamic_cast.
class RemoteBinding {
 public:
  virtual ~RemoteBinding() = default;
  /// Human-readable placement, e.g. "node 3 / object 17".
  [[nodiscard]] virtual std::string describe() const = 0;
};

namespace detail {
template <class T>
struct ObjectCell {
  std::unique_ptr<T> local;
  std::shared_ptr<RemoteBinding> remote;
};
}  // namespace detail

/// Reference to an aspect-managed object (paper §4.1).
///
/// A Ref is what `Context::create<T>()` hands back to the client: it may
/// denote a locally owned instance or — once the distribution aspect is
/// plugged — an object living on a (simulated) remote node. Copying a Ref
/// shares the underlying cell; the cell address doubles as the stable
/// identity the concurrency aspect keys its per-object monitors on, so
/// client-side synchronisation works uniformly for local and remote objects.
template <class T>
class Ref {
 public:
  Ref() = default;

  static Ref make_local(std::unique_ptr<T> obj) {
    Ref r;
    r.cell_ = std::make_shared<detail::ObjectCell<T>>();
    r.cell_->local = std::move(obj);
    return r;
  }

  static Ref make_remote(std::shared_ptr<RemoteBinding> binding) {
    Ref r;
    r.cell_ = std::make_shared<detail::ObjectCell<T>>();
    r.cell_->remote = std::move(binding);
    return r;
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(cell_); }
  explicit operator bool() const { return valid(); }

  [[nodiscard]] bool is_local() const { return cell_ && cell_->local != nullptr; }
  [[nodiscard]] bool is_remote() const {
    return cell_ && cell_->remote != nullptr;
  }

  /// The locally owned instance, or nullptr for remote/invalid refs.
  [[nodiscard]] T* local() const { return cell_ ? cell_->local.get() : nullptr; }

  /// The locally owned instance; throws NotLocalError otherwise.
  [[nodiscard]] T& local_or_throw() const {
    if (T* p = local()) return *p;
    throw NotLocalError("reference to " + describe() +
                        " is not local (is the distribution aspect plugged "
                        "and ordered before dispatch?)");
  }

  [[nodiscard]] std::shared_ptr<RemoteBinding> remote_binding() const {
    return cell_ ? cell_->remote : nullptr;
  }

  /// Stable identity of the referenced object (shared by all copies of
  /// this Ref); used as the monitor key by the concurrency aspect.
  [[nodiscard]] const void* identity() const { return cell_.get(); }

  friend bool operator==(const Ref& a, const Ref& b) {
    return a.cell_ == b.cell_;
  }

  [[nodiscard]] std::string describe() const {
    if (!cell_) return "<null ref>";
    if (cell_->local) return "<local object>";
    if (cell_->remote) return cell_->remote->describe();
    return "<empty cell>";
  }

 private:
  std::shared_ptr<detail::ObjectCell<T>> cell_;
};

}  // namespace apar::aop
