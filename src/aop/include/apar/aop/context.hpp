#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apar/aop/aspect.hpp"
#include "apar/aop/invocation.hpp"
#include "apar/aop/ref.hpp"
#include "apar/concurrency/future.hpp"
#include "apar/concurrency/task_group.hpp"

namespace apar::aop {

/// The weaver (paper §3): a Context holds the attached aspects and routes
/// every exposed join point — object creation via create<T>(), method calls
/// via call<&T::m>() — through the matching advice chains.
///
/// Core functionality written against these two entry points stays oblivious
/// of parallelisation concerns: with no aspects attached both degenerate to
/// a plain `new T(...)` and a plain member call. Attaching the partition,
/// concurrency and distribution aspects then changes creation/call semantics
/// without touching core code — the paper's central claim.
class Context {
 public:
  Context() = default;
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- aspect management (plug / unplug) --------------------------------

  /// Plug an aspect in. Aspects attached earlier see join points at equal
  /// advice order first.
  void attach(std::shared_ptr<Aspect> aspect);

  /// Unplug by name; returns the aspect (or nullptr if absent).
  std::shared_ptr<Aspect> detach(std::string_view name);

  [[nodiscard]] std::shared_ptr<Aspect> find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> attached() const;

  /// Snapshot of the plugged aspects in attach order — the weave plan the
  /// analyzer (apar-analyze) inspects.
  [[nodiscard]] std::vector<std::shared_ptr<Aspect>> aspects() const {
    std::shared_lock lock(mutex_);
    return aspects_;
  }

  /// Bumped on every attach/detach; advice-chain caches key on it.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Toggle the advice-chain match cache (ablation: bench/weaving_micro).
  void set_cache_enabled(bool on);

  // --- asynchronous-work tracking ---------------------------------------

  /// The task group aspect-spawned work registers with.
  [[nodiscard]] concurrency::TaskGroup& tasks() { return tasks_; }

  /// Wait until all aspect-spawned work has drained, iterating the
  /// aspects' on_quiesce hooks until no new work appears. The woven
  /// equivalent of the paper's implicit "main waits for the pipeline".
  void quiesce();

  // --- join points --------------------------------------------------------

  /// Constructor-call join point: create a T (argument types are decayed).
  /// With no matching advice this is exactly `Ref<T>::make_local(new T(...))`.
  template <class T, class... CallArgs>
  Ref<T> create(CallArgs&&... args) {
    using Inv = CtorInvocation<T, std::decay_t<CallArgs>...>;
    const Signature sig{class_name_of<T>(), "new",
                        JoinPointKind::kConstructorCall};
    auto chain = chain_for<typename Inv::AdviceT>(sig);
    std::tuple<std::decay_t<CallArgs>...> tup(
        std::forward<CallArgs>(args)...);
    // Arguments are copied (not moved) into the instance: constructor
    // advice may proceed several times against the same argument tuple
    // (object duplication), so the tuple must stay intact.
    static const typename Inv::Terminal terminal =
        [](Context&, std::decay_t<CallArgs>&... as) {
          return Ref<T>::make_local(std::make_unique<T>(as...));
        };
    return Inv::run(*this, sig, chain, 0, tup, terminal, snapshot_stack());
  }

  /// Method-call join point for a registered method M of class T.
  /// With no matching advice this is exactly `(target.local().*M)(args...)`.
  template <auto M, class... CallArgs>
  auto call(Ref<typename detail::MemberFnTraits<decltype(M)>::Class> target,
            CallArgs&&... args) ->
      typename detail::MemberFnTraits<decltype(M)>::Ret {
    using Traits = detail::MemberFnTraits<decltype(M)>;
    using T = typename Traits::Class;
    return call_tuple<M, T>(
        std::type_identity<typename Traits::ArgsTuple>{}, std::move(target),
        std::forward<CallArgs>(args)...);
  }

  /// Explicit future-typed asynchronous call (paper §4.2's future method
  /// calls): runs the full advice chain on a fresh tracked thread and
  /// delivers the result through an ABCL-style future.
  template <auto M, class... CallArgs>
  auto call_future(
      Ref<typename detail::MemberFnTraits<decltype(M)>::Class> target,
      CallArgs&&... args)
      -> concurrency::Future<
          std::remove_cvref_t<typename detail::MemberFnTraits<decltype(M)>::Ret>> {
    using Traits = detail::MemberFnTraits<decltype(M)>;
    using R = std::remove_cvref_t<typename Traits::Ret>;
    auto promise = std::make_shared<concurrency::Promise<R>>();
    auto future = promise->future();
    tasks_.spawn([this, promise, target = std::move(target),
                  tup = std::make_shared<std::tuple<std::decay_t<CallArgs>...>>(
                      std::forward<CallArgs>(args)...)]() mutable {
      try {
        std::apply(
            [&](auto&... as) {
              if constexpr (std::is_void_v<typename Traits::Ret>) {
                this->call<M>(target, as...);
                promise->set_value();
              } else {
                promise->set_value(this->call<M>(target, as...));
              }
            },
            *tup);
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    return future;
  }

 private:
  template <auto M, class T, class... A, class... CallArgs>
  typename detail::MemberFnTraits<decltype(M)>::Ret call_tuple(
      std::type_identity<std::tuple<A...>>, Ref<T> target,
      CallArgs&&... args) {
    using R = typename detail::MemberFnTraits<decltype(M)>::Ret;
    using Inv = CallInvocation<T, R, A...>;
    const Signature sig{class_name_of<T>(), method_name_of<M>(),
                        JoinPointKind::kMethodCall};
    auto chain = chain_for<typename Inv::AdviceT>(sig);
    std::tuple<A...> tup(std::forward<CallArgs>(args)...);
    static const typename Inv::Terminal terminal = [](Context&, Ref<T>& t,
                                                      A... as) -> R {
      return (t.local_or_throw().*M)(std::forward<A>(as)...);
    };
    return Inv::run(*this, sig, chain, 0, std::move(target), tup, terminal,
                    snapshot_stack());
  }

  /// Build (or fetch from cache) the sorted advice chain for a join point.
  template <class AdvT>
  std::shared_ptr<const detail::Chain<AdvT>> chain_for(const Signature& sig) {
    const CacheKey key{std::type_index(typeid(AdvT)), sig.class_name.data(),
                       sig.method_name.data()};
    const std::uint64_t now = epoch();
    if (cache_enabled_.load(std::memory_order_relaxed)) {
      std::shared_lock lock(mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end() && it->second.epoch == now)
        return std::static_pointer_cast<const detail::Chain<AdvT>>(
            it->second.chain);
    }
    auto chain = std::make_shared<detail::Chain<AdvT>>();
    {
      std::shared_lock lock(mutex_);
      for (const auto& aspect : aspects_) {
        bool used = false;
        for (const auto& adv : aspect->advice()) {
          if (auto* typed = dynamic_cast<AdvT*>(adv.get());
              typed != nullptr && typed->matches(sig)) {
            chain->advice.push_back(typed);
            used = true;
          }
        }
        if (used) chain->keepalive.push_back(aspect);
      }
    }
    std::stable_sort(chain->advice.begin(), chain->advice.end(),
                     [](const AdvT* a, const AdvT* b) {
                       return a->order() < b->order();
                     });
    if (cache_enabled_.load(std::memory_order_relaxed)) {
      std::unique_lock lock(mutex_);
      cache_[key] = CacheEntry{now, chain};
    }
    return chain;
  }

  /// Snapshot of the current thread's aspect-frame stack (interned empty
  /// stack for the common core-code case).
  static detail::SnapshotPtr snapshot_stack();

  struct CacheKey {
    std::type_index type;
    const void* class_name;
    const void* method_name;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      std::size_t h = k.type.hash_code();
      h = h * 1000003u ^ std::hash<const void*>{}(k.class_name);
      h = h * 1000003u ^ std::hash<const void*>{}(k.method_name);
      return h;
    }
  };
  struct CacheEntry {
    std::uint64_t epoch = 0;
    std::shared_ptr<void> chain;
  };

  mutable std::shared_mutex mutex_;
  std::vector<std::shared_ptr<Aspect>> aspects_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> cache_enabled_{true};
  concurrency::TaskGroup tasks_;
};

}  // namespace apar::aop
