#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::aop {

/// Direction of a declared shared-state effect.
enum class EffectKind { kRead, kWrite };

[[nodiscard]] std::string_view effect_kind_name(EffectKind kind);

/// One declared effect of a join point: the named state cell it touches
/// and whether it mutates it. State names are scoped per class — the
/// "scratch" of PrimeFilter and the "scratch" of another core class are
/// unrelated cells — and per *instance*: two distinct objects never share
/// a state cell, which is why object-confined concurrency (dynamic-farm
/// worker loops) cannot race on declared state.
struct Effect {
  std::string_view state;  ///< interned; valid for the process lifetime
  EffectKind kind = EffectKind::kRead;

  friend bool operator==(const Effect&, const Effect&) = default;
};

/// Process-wide table of declared method effects, the runtime companion of
/// the compile-time name traits in signature.hpp. APAR_METHOD_READS /
/// APAR_METHOD_WRITES feed it at static-initialisation time, exactly like
/// APAR_METHOD_NAME feeds the SignatureRegistry. A template trait (the
/// MethodIdempotent model) cannot hold an effect *set* — a method reads
/// and writes several named cells, and a specialisation can only be
/// written once — so effect declarations self-register here instead.
///
/// The table also records which state cells a class declares
/// *idempotent-safe* (APAR_STATE_IDEMPOTENT): writes to such a cell are
/// replay-equivalent (the cell is fully overwritten before any read, e.g.
/// a scratch buffer), so memoizing a writer of that cell is sound. The
/// cache-effect pass consults this; the race pass deliberately does not —
/// a cache-safe scratch cell is still a data race when two threads write
/// it unsynchronised.
class EffectRegistry {
 public:
  static EffectRegistry& global();

  EffectRegistry(const EffectRegistry&) = delete;
  EffectRegistry& operator=(const EffectRegistry&) = delete;

  /// Idempotently declare that `class_name::method_name` touches `state`.
  /// Duplicate declarations (the same header included in many translation
  /// units) collapse to one entry; returns true when the entry is new.
  bool add(std::string_view class_name, std::string_view method_name,
           std::string_view state, EffectKind kind);

  /// Idempotently declare `state` of `class_name` idempotent-safe.
  bool add_idempotent_state(std::string_view class_name,
                            std::string_view state);

  /// Declared effects of a signature (empty when nothing was declared).
  [[nodiscard]] std::vector<Effect> effects(const Signature& sig) const;

  /// Whether any effect was declared for this signature. Undeclared is not
  /// the same as pure: the analyzers treat an undeclared concurrent
  /// signature as *unknown* (an info finding), never as proven safe.
  [[nodiscard]] bool declared(const Signature& sig) const;

  [[nodiscard]] bool state_idempotent(std::string_view class_name,
                                      std::string_view state) const;

  [[nodiscard]] std::size_t size() const;

 private:
  EffectRegistry() = default;

  struct Entry {
    std::string class_name;
    std::string method_name;
    std::string state;
    EffectKind kind;
  };
  struct StateEntry {
    std::string class_name;
    std::string state;
  };

  mutable std::mutex mutex_;
  // unique_ptr entries so interned strings never move: the string_views
  // handed out by effects() stay valid for the process lifetime.
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<std::unique_ptr<StateEntry>> idempotent_states_;
};

}  // namespace apar::aop
