#pragma once

/// Umbrella header for the AspectPar AOP engine.
///
/// Core model (paper §3-§4):
///  - a join point is an object creation (`Context::create<T>`) or a method
///    call (`Context::call<&T::m>`);
///  - a pointcut is a wildcard Pattern over "Class.method" signatures plus a
///    lexical Scope (within / not-within / core-only);
///  - advice is before/after/around code registered by an Aspect, with
///    `proceed` available to around advice (multi-proceed = call split,
///    retarget = call routing, continuation = asynchronous proceed);
///  - weaving is performed by the Context, at run time, so aspects can be
///    plugged and unplugged on the fly; a compile-time weaver
///    (static_weave.hpp) covers the zero-overhead case.
#include "apar/aop/advice.hpp"
#include "apar/aop/aspect.hpp"
#include "apar/aop/context.hpp"
#include "apar/aop/invocation.hpp"
#include "apar/aop/ref.hpp"
#include "apar/aop/signature.hpp"
#include "apar/aop/static_weave.hpp"
