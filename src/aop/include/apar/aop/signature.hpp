#pragma once

#include <string>
#include <string_view>

namespace apar::aop {

/// Kind of join point (paper §3: object creations and method calls are the
/// interceptable events).
enum class JoinPointKind { kConstructorCall, kMethodCall };

/// Identity of a join point: "Class.method" plus the kind. Constructor call
/// join points use the method name "new", mirroring AspectJ's
/// `Class.new(..)` pointcut syntax used throughout the paper.
struct Signature {
  std::string_view class_name;
  std::string_view method_name;
  JoinPointKind kind = JoinPointKind::kMethodCall;

  [[nodiscard]] std::string str() const {
    return std::string(class_name) + "." + std::string(method_name);
  }

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Wildcard pattern over signatures, e.g. "PrimeFilter.filter",
/// "Point.move*", "*.filter", "*.*". The '*' wildcard matches any run of
/// characters within one segment; segments are separated by the first '.'.
class Pattern {
 public:
  /// Match-anything pattern.
  Pattern() : class_pat_("*"), method_pat_("*") {}

  /// Parse "ClassPat.MethodPat"; a pattern without '.' applies the whole
  /// string to the class segment and matches any method.
  explicit Pattern(std::string_view text);

  Pattern(std::string class_pat, std::string method_pat)
      : class_pat_(std::move(class_pat)), method_pat_(std::move(method_pat)) {}

  [[nodiscard]] bool matches(const Signature& sig) const;

  [[nodiscard]] const std::string& class_pattern() const { return class_pat_; }
  [[nodiscard]] const std::string& method_pattern() const { return method_pat_; }
  [[nodiscard]] std::string str() const { return class_pat_ + "." + method_pat_; }

  /// Glob match with '*' only (exposed for testing).
  static bool glob_match(std::string_view pattern, std::string_view text);

 private:
  std::string class_pat_;
  std::string method_pat_;
};

/// Compile-time class-name trait. Core classes opt into weaving by
/// specialising this (usually via APAR_CLASS_NAME), which is the C++
/// analogue of the paper's design rule that core functionality must expose
/// its join points deliberately.
template <class T>
struct ClassName {
  static constexpr std::string_view value = "<unregistered>";
};

/// Compile-time method-name trait for a member-function pointer constant.
template <auto M>
struct MethodName {
  static constexpr std::string_view value = "<unregistered>";
};

/// Compile-time idempotency declaration for a method (default: not
/// idempotent). A method declared idempotent via APAR_METHOD_IDEMPOTENT
/// promises that its observable effect — the mutated by-reference
/// arguments plus the return value — is a pure function of the argument
/// values and of state fixed at construction, so replaying a recorded
/// effect instead of executing the body is indistinguishable to callers.
/// This is the design rule the memoisation aspect (apar::cache) relies on
/// and the weave-plan analyzer's cache-safety pass enforces: caching
/// advice on an undeclared method is flagged.
template <auto M>
struct MethodIdempotent {
  static constexpr bool value = false;
};

template <class T>
constexpr std::string_view class_name_of() {
  return ClassName<std::remove_cv_t<std::remove_reference_t<T>>>::value;
}

template <auto M>
constexpr std::string_view method_name_of() {
  return MethodName<M>::value;
}

template <auto M>
constexpr bool method_idempotent() {
  return MethodIdempotent<M>::value;
}

namespace detail {

/// Class type of a member-function pointer (local mini-trait; the full
/// MemberFnTraits lives in invocation.hpp, which includes this header).
template <class M>
struct MemberClassOf;
template <class C, class R, class... A>
struct MemberClassOf<R (C::*)(A...)> {
  using type = C;
};
template <class C, class R, class... A>
struct MemberClassOf<R (C::*)(A...) const> {
  using type = C;
};

/// Feed the global SignatureRegistry (static_weave.hpp). Implemented in
/// static_weave.cpp; declared here so the registration macros below can
/// reach the table without an include cycle.
bool register_ctor_signature(std::string_view class_name);
bool register_call_signature(std::string_view class_name,
                             std::string_view method_name);

/// Self-registration hook run by APAR_METHOD_NAME: derives the owning
/// class from the member-function pointer, so the macro invocation must
/// follow the class's APAR_CLASS_NAME (as all shipped headers do).
template <auto M>
bool register_method_signature(std::string_view method_name) {
  using C = typename MemberClassOf<decltype(M)>::type;
  return register_call_signature(class_name_of<C>(), method_name);
}

/// Feed the global EffectRegistry (effects.hpp). Implemented in
/// effects.cpp; declared here so the effect macros below can reach the
/// table without an include cycle.
bool register_effect(std::string_view class_name, std::string_view method_name,
                     std::string_view state, bool is_write);
bool register_idempotent_state(std::string_view class_name,
                               std::string_view state);

/// Self-registration hook run by APAR_METHOD_READS / APAR_METHOD_WRITES:
/// like register_method_signature, it derives the owning class from the
/// member-function pointer, so the macro must follow APAR_METHOD_NAME.
template <auto M>
bool register_method_effect(std::string_view state, bool is_write) {
  using C = typename MemberClassOf<decltype(M)>::type;
  return register_effect(class_name_of<C>(), method_name_of<M>(), state,
                         is_write);
}

}  // namespace detail

}  // namespace apar::aop

/// Register the weaving name of a class. Must appear at global scope.
/// Besides the compile-time name trait, this self-registers the class's
/// constructor-call join point ("NAME.new") into the process-wide
/// SignatureRegistry (static_weave.hpp), which the weave-plan analyzer
/// uses to detect dead pointcuts.
#define APAR_CLASS_NAME(TYPE, NAME)                            \
  template <>                                                  \
  struct apar::aop::ClassName<TYPE> {                          \
    static constexpr std::string_view value = NAME;            \
    static inline const bool weave_registered =                \
        apar::aop::detail::register_ctor_signature(NAME);      \
  }

/// Register the weaving name of a method. Must appear at global scope,
/// after the owning class's APAR_CLASS_NAME. Self-registers the
/// method-call join point ("Class.NAME") into the SignatureRegistry.
#define APAR_METHOD_NAME(METHOD, NAME)                             \
  template <>                                                      \
  struct apar::aop::MethodName<METHOD> {                           \
    static constexpr std::string_view value = NAME;                \
    static inline const bool weave_registered =                    \
        apar::aop::detail::register_method_signature<METHOD>(NAME); \
  }

/// Declare a registered method idempotent (memoisable): same argument
/// values always yield the same mutated arguments and return value, and
/// the call has no other externally visible effect. Must appear at global
/// scope, after the method's APAR_METHOD_NAME. The caching aspect records
/// this verdict in its advice metadata, where the weave-plan analyzer's
/// cache-safety pass reads it back.
#define APAR_METHOD_IDEMPOTENT(METHOD)       \
  template <>                                \
  struct apar::aop::MethodIdempotent<METHOD> { \
    static constexpr bool value = true;      \
  }

#define APAR_EFFECT_CONCAT_IMPL(A, B) A##B
#define APAR_EFFECT_CONCAT(A, B) APAR_EFFECT_CONCAT_IMPL(A, B)

/// Declare that a registered method reads the named per-instance state
/// cell. Must appear at global scope, after the method's APAR_METHOD_NAME.
/// Unlike the one-shot trait specialisations above, a method declares a
/// *set* of effects (several READS/WRITES lines), so these register into
/// the runtime EffectRegistry (effects.hpp) instead of a template trait.
/// The registrar variable is internal-linkage: every translation unit that
/// includes the header re-registers, and the registry deduplicates.
#define APAR_METHOD_READS(METHOD, STATE)                                 \
  [[maybe_unused]] static const bool APAR_EFFECT_CONCAT(apar_effect_r_,  \
                                                        __COUNTER__) =   \
      apar::aop::detail::register_method_effect<METHOD>(STATE, false)

/// Declare that a registered method writes (mutates) the named
/// per-instance state cell. Same placement rules as APAR_METHOD_READS.
#define APAR_METHOD_WRITES(METHOD, STATE)                                \
  [[maybe_unused]] static const bool APAR_EFFECT_CONCAT(apar_effect_w_,  \
                                                        __COUNTER__) =   \
      apar::aop::detail::register_method_effect<METHOD>(STATE, true)

/// Declare a state cell of a registered class idempotent-safe: every
/// write fully overwrites the cell before any read (a scratch buffer), so
/// replaying a memoized effect without re-executing the writes is
/// indistinguishable to callers. The cache-effect analysis accepts cached
/// writers of such cells; the race analysis deliberately still treats
/// them as shared mutable state. Must appear at global scope, after the
/// class's APAR_CLASS_NAME.
#define APAR_STATE_IDEMPOTENT(TYPE, STATE)                                  \
  [[maybe_unused]] static const bool APAR_EFFECT_CONCAT(apar_state_idem_,   \
                                                        __COUNTER__) =      \
      apar::aop::detail::register_idempotent_state(                         \
          apar::aop::class_name_of<TYPE>(), STATE)
