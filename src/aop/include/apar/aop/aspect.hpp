#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apar/aop/invocation.hpp"

namespace apar::aop {

class Context;

/// A modular crosscutting concern (paper §3): a named bundle of advice that
/// can be attached to ("plugged"), detached from ("unplugged"), or disabled
/// within a weaving Context — at any time, including while the application
/// runs.
///
/// Concrete parallelisation aspects (partition, concurrency, distribution,
/// optimisation — §4) subclass Aspect and register advice in their
/// constructor; reusable abstract aspects (the paper's PipelineProtocol,
/// Figure 9) are class templates over the core class they manage.
class Aspect {
 public:
  explicit Aspect(std::string name) : name_(std::move(name)) {}
  virtual ~Aspect() = default;

  Aspect(const Aspect&) = delete;
  Aspect& operator=(const Aspect&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Disabled aspects stay attached but their advice is skipped — a
  /// lighter-weight unplug for debugging (paper §4.2).
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Lifecycle hooks.
  virtual void on_attach(Context&) {}
  virtual void on_detach(Context&) {}
  /// Called by Context::quiesce() after the task group drained; aspects
  /// with private work (queues, worker loops, pending sends) flush here.
  virtual void on_quiesce(Context&) {}

  /// All advice registered by this aspect, in registration order.
  [[nodiscard]] const std::vector<std::unique_ptr<AdviceBase>>& advice()
      const {
    return advice_;
  }

  // --- registration API -----------------------------------------------
  // All registration calls return the freshly created advice record, so
  // aspects can annotate it with analysis metadata (mark_acquires_monitor,
  // mark_distributes) for the weave-plan analyzer.

  /// Around advice on method calls of shape R (T::*)(A...).
  template <class T, class R, class... A>
  AdviceBase& around_call(Pattern pattern, int order, Scope scope,
                          typename CallAdvice<T, R, A...>::Fn fn) {
    advice_.push_back(std::make_unique<CallAdvice<T, R, A...>>(
        this, std::move(pattern), order, std::move(scope), std::move(fn)));
    return *advice_.back();
  }

  /// Around advice on a specific registered method; the pattern defaults to
  /// the method's exact "Class.method" signature.
  template <auto M, class Fn>
  AdviceBase& around_method(int order, Scope scope, Fn fn) {
    using Traits = detail::MemberFnTraits<decltype(M)>;
    using T = typename Traits::Class;
    return register_for_tuple<T, typename Traits::Ret>(
        std::type_identity<typename Traits::ArgsTuple>{},
        Pattern(std::string(class_name_of<T>()),
                std::string(method_name_of<M>())),
        order, std::move(scope), std::move(fn));
  }

  /// Around advice on constructor calls T(A...) (decayed argument types).
  template <class T, class... A>
  AdviceBase& around_new(int order, Scope scope,
                         typename CtorAdvice<T, A...>::Fn fn) {
    advice_.push_back(std::make_unique<CtorAdvice<T, A...>>(
        this, Pattern(std::string(class_name_of<T>()), "new"), order,
        std::move(scope), std::move(fn)));
    return *advice_.back();
  }

  /// Before advice sugar: `fn(inv)` runs, then the call proceeds.
  template <auto M, class Fn>
  AdviceBase& before_method(int order, Scope scope, Fn fn) {
    using Traits = detail::MemberFnTraits<decltype(M)>;
    using R = typename Traits::Ret;
    return around_method<M>(order, std::move(scope), [fn](auto& inv) -> R {
      fn(inv);
      return inv.proceed();
    });
  }

  /// After advice sugar: the call proceeds, then `fn(inv)` runs (only on
  /// normal return — AspectJ's `after returning`).
  template <auto M, class Fn>
  AdviceBase& after_method(int order, Scope scope, Fn fn) {
    using Traits = detail::MemberFnTraits<decltype(M)>;
    using R = typename Traits::Ret;
    return around_method<M>(order, std::move(scope), [fn](auto& inv) -> R {
      if constexpr (std::is_void_v<R>) {
        inv.proceed();
        fn(inv);
      } else {
        R result = inv.proceed();
        fn(inv);
        return result;
      }
    });
  }

 private:
  template <class T, class R, class... A, class Fn>
  AdviceBase& register_for_tuple(std::type_identity<std::tuple<A...>>,
                                 Pattern pattern, int order, Scope scope,
                                 Fn fn) {
    return around_call<T, R, A...>(std::move(pattern), order, std::move(scope),
                                   std::move(fn));
  }

  std::string name_;
  std::atomic<bool> enabled_{true};
  std::vector<std::unique_ptr<AdviceBase>> advice_;
};

/// RAII helper for aspect-owned threads (e.g. a dynamic farm's worker
/// loops): marks the current thread as executing inside `aspect`, so that
/// `within`/`core_only` scoping treats calls it makes as aspect-made, not
/// core-made.
class AspectFrame {
 public:
  explicit AspectFrame(const Aspect& aspect) : frame_(&aspect) {}

 private:
  detail::Frame frame_;
};

}  // namespace apar::aop
