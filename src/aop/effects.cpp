#include "apar/aop/effects.hpp"

namespace apar::aop {

std::string_view effect_kind_name(EffectKind kind) {
  switch (kind) {
    case EffectKind::kRead: return "reads";
    case EffectKind::kWrite: return "writes";
  }
  return "?";
}

EffectRegistry& EffectRegistry::global() {
  // Meyers singleton, like SignatureRegistry: the effect macros run during
  // static initialisation of arbitrary translation units, so the table
  // must construct on first use.
  static EffectRegistry registry;
  return registry;
}

bool EffectRegistry::add(std::string_view class_name,
                         std::string_view method_name, std::string_view state,
                         EffectKind kind) {
  std::lock_guard lock(mutex_);
  for (const auto& e : entries_) {
    if (e->kind == kind && e->class_name == class_name &&
        e->method_name == method_name && e->state == state)
      return false;
  }
  entries_.push_back(std::make_unique<Entry>(
      Entry{std::string(class_name), std::string(method_name),
            std::string(state), kind}));
  return true;
}

bool EffectRegistry::add_idempotent_state(std::string_view class_name,
                                          std::string_view state) {
  std::lock_guard lock(mutex_);
  for (const auto& e : idempotent_states_) {
    if (e->class_name == class_name && e->state == state) return false;
  }
  idempotent_states_.push_back(std::make_unique<StateEntry>(
      StateEntry{std::string(class_name), std::string(state)}));
  return true;
}

std::vector<Effect> EffectRegistry::effects(const Signature& sig) const {
  std::lock_guard lock(mutex_);
  std::vector<Effect> out;
  if (sig.kind != JoinPointKind::kMethodCall) return out;
  for (const auto& e : entries_) {
    if (e->class_name == sig.class_name && e->method_name == sig.method_name)
      out.push_back(Effect{e->state, e->kind});
  }
  return out;
}

bool EffectRegistry::declared(const Signature& sig) const {
  std::lock_guard lock(mutex_);
  if (sig.kind != JoinPointKind::kMethodCall) return false;
  for (const auto& e : entries_) {
    if (e->class_name == sig.class_name && e->method_name == sig.method_name)
      return true;
  }
  return false;
}

bool EffectRegistry::state_idempotent(std::string_view class_name,
                                      std::string_view state) const {
  std::lock_guard lock(mutex_);
  for (const auto& e : idempotent_states_) {
    if (e->class_name == class_name && e->state == state) return true;
  }
  return false;
}

std::size_t EffectRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

namespace detail {

bool register_effect(std::string_view class_name, std::string_view method_name,
                     std::string_view state, bool is_write) {
  return EffectRegistry::global().add(
      class_name, method_name, state,
      is_write ? EffectKind::kWrite : EffectKind::kRead);
}

bool register_idempotent_state(std::string_view class_name,
                               std::string_view state) {
  return EffectRegistry::global().add_idempotent_state(class_name, state);
}

}  // namespace detail

}  // namespace apar::aop
