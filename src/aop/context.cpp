#include "apar/aop/context.hpp"

#include <stdexcept>

#include "apar/common/log.hpp"

namespace apar::aop {

Context::~Context() {
  // Drain any still-outstanding aspect work before members are destroyed;
  // TaskGroup's destructor would wait anyway, but quiesce also flushes
  // aspect-private queues.
  try {
    quiesce();
  } catch (...) {
    // Destructors must not throw; a failed task's exception was the
    // caller's to collect via quiesce() before destruction.
    APAR_ERROR("aop") << "exception swallowed during Context teardown";
  }
}

void Context::attach(std::shared_ptr<Aspect> aspect) {
  if (!aspect) throw std::invalid_argument("attach: null aspect");
  {
    std::unique_lock lock(mutex_);
    for (const auto& existing : aspects_) {
      if (existing->name() == aspect->name())
        throw std::invalid_argument("attach: aspect '" + aspect->name() +
                                    "' is already attached");
    }
    aspects_.push_back(aspect);
    cache_.clear();
  }
  epoch_.fetch_add(1, std::memory_order_release);
  aspect->on_attach(*this);
}

std::shared_ptr<Aspect> Context::detach(std::string_view name) {
  std::shared_ptr<Aspect> removed;
  {
    std::unique_lock lock(mutex_);
    for (auto it = aspects_.begin(); it != aspects_.end(); ++it) {
      if ((*it)->name() == name) {
        removed = *it;
        aspects_.erase(it);
        break;
      }
    }
    if (removed) cache_.clear();
  }
  if (removed) {
    epoch_.fetch_add(1, std::memory_order_release);
    removed->on_detach(*this);
  }
  return removed;
}

std::shared_ptr<Aspect> Context::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  for (const auto& aspect : aspects_) {
    if (aspect->name() == name) return aspect;
  }
  return nullptr;
}

std::vector<std::string> Context::attached() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(aspects_.size());
  for (const auto& aspect : aspects_) names.push_back(aspect->name());
  return names;
}

void Context::set_cache_enabled(bool on) {
  cache_enabled_.store(on, std::memory_order_relaxed);
  std::unique_lock lock(mutex_);
  cache_.clear();
}

void Context::quiesce() {
  // Aspects may produce more work from their on_quiesce hooks (e.g. a
  // dynamic farm flushing its queue spawns result deliveries), so iterate
  // to a fixed point.
  constexpr int kMaxRounds = 64;
  for (int round = 0; round < kMaxRounds; ++round) {
    tasks_.wait();
    std::vector<std::shared_ptr<Aspect>> snapshot;
    {
      std::shared_lock lock(mutex_);
      snapshot = aspects_;
    }
    for (const auto& aspect : snapshot) aspect->on_quiesce(*this);
    if (tasks_.outstanding() == 0) {
      tasks_.wait();  // rethrow any error captured by the final tasks
      return;
    }
  }
  throw std::runtime_error(
      "Context::quiesce did not reach a fixed point (an aspect keeps "
      "generating work)");
}

detail::SnapshotPtr Context::snapshot_stack() {
  static const detail::SnapshotPtr empty =
      std::make_shared<const detail::AspectStack>();
  const auto& stack = detail::tls_aspect_stack();
  if (stack.empty()) return empty;
  return std::make_shared<const detail::AspectStack>(stack);
}

}  // namespace apar::aop
