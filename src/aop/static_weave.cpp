#include "apar/aop/static_weave.hpp"

namespace apar::aop {

SignatureRegistry& SignatureRegistry::global() {
  // Meyers singleton: the registration macros run during static
  // initialisation of arbitrary translation units, so the table must
  // construct on first use.
  static SignatureRegistry registry;
  return registry;
}

bool SignatureRegistry::add(std::string_view class_name,
                            std::string_view method_name, JoinPointKind kind) {
  std::lock_guard lock(mutex_);
  for (const auto& e : entries_) {
    if (e->kind == kind && e->class_name == class_name &&
        e->method_name == method_name)
      return false;
  }
  entries_.push_back(std::make_unique<Entry>(
      Entry{std::string(class_name), std::string(method_name), kind}));
  return true;
}

std::vector<Signature> SignatureRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Signature> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_)
    out.push_back(Signature{e->class_name, e->method_name, e->kind});
  return out;
}

std::size_t SignatureRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

bool SignatureRegistry::contains(const Signature& sig) const {
  std::lock_guard lock(mutex_);
  for (const auto& e : entries_) {
    if (e->kind == sig.kind && e->class_name == sig.class_name &&
        e->method_name == sig.method_name)
      return true;
  }
  return false;
}

namespace detail {

bool register_ctor_signature(std::string_view class_name) {
  return SignatureRegistry::global().add(class_name, "new",
                                         JoinPointKind::kConstructorCall);
}

bool register_call_signature(std::string_view class_name,
                             std::string_view method_name) {
  return SignatureRegistry::global().add(class_name, method_name,
                                         JoinPointKind::kMethodCall);
}

}  // namespace detail

}  // namespace apar::aop
