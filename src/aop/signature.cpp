#include "apar/aop/signature.hpp"

namespace apar::aop {

Pattern::Pattern(std::string_view text) {
  const auto dot = text.find('.');
  if (dot == std::string_view::npos) {
    class_pat_ = std::string(text);
    method_pat_ = "*";
  } else {
    class_pat_ = std::string(text.substr(0, dot));
    method_pat_ = std::string(text.substr(dot + 1));
  }
  if (class_pat_.empty()) class_pat_ = "*";
  if (method_pat_.empty()) method_pat_ = "*";
}

bool Pattern::matches(const Signature& sig) const {
  return glob_match(class_pat_, sig.class_name) &&
         glob_match(method_pat_, sig.method_name);
}

bool Pattern::glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' glob with backtracking (classic two-pointer algorithm).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace apar::aop
