#include "apar/sieve/handcoded.hpp"

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "apar/cluster/middleware.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/sync_registry.hpp"
#include "apar/concurrency/task_group.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "apar/sieve/workload.hpp"
#include "apar/strategies/partition_common.hpp"

namespace apar::sieve::handcoded {

SieveResult run_pipeline_rmi(const SieveConfig& config) {
  namespace ac = apar::cluster;
  SieveResult result;

  // --- set-up: cluster, registry, remote filters (tangled with the
  // algorithm, exactly what the paper's methodology removes) -------------
  ac::Cluster::Options copts;
  copts.nodes = config.nodes;
  copts.executors_per_node = config.node_executors;
  ac::Cluster cluster(copts);
  cluster.registry()
      .bind<PrimeFilter>("PrimeFilter")
      .ctor<long long, long long, double>()
      .method<&PrimeFilter::filter>("filter")
      .method<&PrimeFilter::collect>("collect")
      .method<&PrimeFilter::take_results>("take_results");
  ac::RmiMiddleware rmi(cluster);
  const auto format = rmi.wire_format();

  auto candidates = odd_candidates(config.max);
  const long long root = sieve_root(config.max);
  const auto ranges = balanced_prime_ranges(config.max, config.filters);

  common::Stopwatch sw;

  std::vector<ac::RemoteHandle> stages;
  stages.reserve(config.filters);
  for (std::size_t i = 0; i < config.filters; ++i) {
    auto handle = rmi.create(
        static_cast<ac::NodeId>(i % config.nodes), "PrimeFilter",
        serial::encode(format, ranges[i].first, ranges[i].second,
                       config.ns_per_op));
    if (config.register_names) {
      const std::string name = "PS" + std::to_string(i + 1);
      cluster.name_server().bind(name, handle);
      if (auto resolved = rmi.lookup(name)) handle = *resolved;
    }
    stages.push_back(handle);
  }

  // --- the parallel algorithm: one thread per pack walks the pipeline ---
  auto packs =
      strategies::split_into_packs<long long>(candidates, config.pack_size);
  concurrency::TaskGroup group;
  concurrency::SyncRegistry monitors;
  for (auto& pack : packs) {
    group.spawn([&, pack]() mutable {
      for (std::size_t i = 0; i < stages.size(); ++i) {
        auto guard = monitors.acquire(&stages[i]);
        auto reply =
            rmi.invoke(stages[i], "filter", serial::encode(format, pack));
        serial::Reader reader(reply, format);
        reader.value(pack);  // copy-restore by hand
      }
      auto guard = monitors.acquire(&stages.back());
      rmi.invoke(stages.back(), "collect", serial::encode(format, pack));
    });
  }
  group.wait();
  result.seconds = sw.seconds();

  // --- result gathering (untimed, matching SieveHarness::run) -----------
  std::vector<long long> survivors;
  for (const auto& stage : stages) {
    auto reply = rmi.invoke(stage, "take_results", serial::encode(format));
    serial::Reader reader(reply, format);
    std::vector<long long> part;
    reader.value(part);
    survivors.insert(survivors.end(), part.begin(), part.end());
  }
  result.primes =
      count_primes_up_to(root) + static_cast<long long>(survivors.size());
  const auto& stats = rmi.stats();
  result.sync_messages = stats.sync_calls.load() + stats.creates.load();
  result.bytes_on_wire =
      stats.bytes_sent.load() + stats.bytes_received.load();
  return result;
}

SieveResult run_farm_threads(const SieveConfig& config) {
  SieveResult result;
  auto candidates = odd_candidates(config.max);
  const long long root = sieve_root(config.max);

  common::Stopwatch sw;

  std::vector<std::unique_ptr<PrimeFilter>> workers;
  for (std::size_t i = 0; i < config.filters; ++i)
    workers.push_back(
        std::make_unique<PrimeFilter>(2, root, config.ns_per_op));

  auto packs =
      strategies::split_into_packs<long long>(candidates, config.pack_size);
  // Hand-coded counterpart of the farm+pool weave: a work-stealing pool
  // sized to the CPU-slot budget (so no ParallelismLimiter is needed — the
  // pool IS the limiter) and one bulk submission for all packs. Packs are
  // routed round-robin by index; the per-worker monitor keeps PrimeFilter's
  // non-thread-safe process() serialised per duplicate.
  concurrency::ThreadPool pool(config.local_cpu_slots);
  concurrency::SyncRegistry monitors;
  concurrency::parallel_for(
      pool, 0, packs.size(), /*grain=*/1, [&](std::size_t p) {
        PrimeFilter* worker = workers[p % workers.size()].get();
        auto guard = monitors.acquire(worker);
        worker->process(packs[p]);
      });
  result.seconds = sw.seconds();

  long long survivors = 0;
  for (auto& worker : workers)
    survivors += static_cast<long long>(worker->take_results().size());
  result.primes = count_primes_up_to(root) + survivors;
  return result;
}

}  // namespace apar::sieve::handcoded
