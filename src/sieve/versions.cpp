#include "apar/sieve/versions.hpp"

#include <stdexcept>
#include <tuple>

#include "apar/common/stopwatch.hpp"
#include "apar/sieve/workload.hpp"
#include "apar/strategies/strategies.hpp"

namespace apar::sieve {

namespace {

using CandPack = long long;
using PipeAspect =
    strategies::PipelineAspect<PrimeFilter, long long, long long, long long,
                               double>;
using FarmAspect =
    strategies::FarmAspect<PrimeFilter, long long, long long, long long,
                           double>;
using DFarmAspect =
    strategies::DynamicFarmAspect<PrimeFilter, long long, long long,
                                  long long, double>;
using ConcAspect = strategies::ConcurrencyAspect<PrimeFilter>;
using DistAspect =
    strategies::DistributionAspect<PrimeFilter, long long, long long, double>;
using LocalCpu = strategies::optimisation::LocalCpuAspect<PrimeFilter>;

/// Pipeline stages get balanced sub-ranges of the base primes (paper
/// Figure 8: "create filter with specific parameters").
strategies::CtorPartitioner<long long, long long, double>
pipeline_ctor_partitioner(long long max) {
  return [max](std::size_t i, std::size_t k,
               const std::tuple<long long, long long, double>& original) {
    const auto ranges = balanced_prime_ranges(max, k);
    return std::make_tuple(ranges[i].first, ranges[i].second,
                           std::get<2>(original));
  };
}

}  // namespace

std::string_view version_name(Version v) {
  switch (v) {
    case Version::kSequential: return "Sequential";
    case Version::kFarmThreads: return "FarmThreads";
    case Version::kPipeRmi: return "PipeRMI";
    case Version::kFarmRmi: return "FarmRMI";
    case Version::kFarmDRmi: return "FarmDRMI";
    case Version::kFarmMpp: return "FarmMPP";
    case Version::kFarmHybrid: return "FarmHybrid";
  }
  return "?";
}

const std::vector<Version>& table1_versions() {
  static const std::vector<Version> versions{
      Version::kFarmThreads, Version::kPipeRmi, Version::kFarmRmi,
      Version::kFarmDRmi, Version::kFarmMpp};
  return versions;
}

const std::vector<Version>& extended_versions() {
  static const std::vector<Version> versions = [] {
    auto v = table1_versions();
    v.push_back(Version::kFarmHybrid);
    return v;
  }();
  return versions;
}

SieveHarness::SieveHarness(Version version, SieveConfig config)
    : version_(version), config_(config) {
  build();
}

SieveHarness::~SieveHarness() {
  // The context must quiesce and drop aspects (which join their worker
  // threads) before the cluster it talks to disappears.
  ctx_.reset();
  middleware_.reset();
  backends_.clear();
  cluster_.reset();
}

void SieveHarness::build() {
  ctx_ = std::make_unique<aop::Context>();

  const bool distributed = version_ == Version::kPipeRmi ||
                           version_ == Version::kFarmRmi ||
                           version_ == Version::kFarmDRmi ||
                           version_ == Version::kFarmMpp ||
                           version_ == Version::kFarmHybrid;

  if (distributed) {
    cluster::Cluster::Options copts;
    copts.nodes = config_.nodes;
    copts.executors_per_node = config_.node_executors;
    cluster_ = std::make_unique<cluster::Cluster>(copts);
    cluster_->registry()
        .bind<PrimeFilter>("PrimeFilter")
        .ctor<long long, long long, double>()
        .method<&PrimeFilter::filter>("filter")
        .method<&PrimeFilter::process>("process")
        .method<&PrimeFilter::collect>("collect")
        .method<&PrimeFilter::take_results>("take_results");
    const cluster::CostModel rmi_costs = config_.loopback_costs
                                             ? cluster::CostModel::loopback()
                                             : cluster::CostModel::rmi();
    const cluster::CostModel mpp_costs = config_.loopback_costs
                                             ? cluster::CostModel::loopback()
                                             : cluster::CostModel::mpp();
    if (version_ == Version::kFarmMpp) {
      middleware_ =
          std::make_unique<cluster::MppMiddleware>(*cluster_, mpp_costs);
    } else if (version_ == Version::kFarmHybrid) {
      // Paper §5.3: MPP carries the performance-critical filter traffic,
      // RMI the control plane (creations, registry, result gathering).
      backends_.push_back(
          std::make_unique<cluster::RmiMiddleware>(*cluster_, rmi_costs));
      backends_.push_back(
          std::make_unique<cluster::MppMiddleware>(*cluster_, mpp_costs));
      middleware_ = std::make_unique<cluster::HybridMiddleware>(
          *backends_[0], *backends_[1],
          std::vector<std::string>{"filter", "process", "collect"});
    } else {
      middleware_ =
          std::make_unique<cluster::RmiMiddleware>(*cluster_, rmi_costs);
    }
  }

  // --- partition ---------------------------------------------------------
  switch (version_) {
    case Version::kSequential:
      gather_ = nullptr;
      break;
    case Version::kPipeRmi: {
      PipeAspect::Options opts;
      opts.duplicates = config_.filters;
      opts.pack_size = config_.pack_size;
      opts.ctor_args = pipeline_ctor_partitioner(config_.max);
      auto pipe = std::make_shared<PipeAspect>("Partition", opts);
      ctx_->attach(pipe);
      gather_ = [pipe](aop::Context& ctx) { return pipe->gather_results(ctx); };
      break;
    }
    case Version::kFarmDRmi: {
      DFarmAspect::Options opts;
      opts.duplicates = config_.filters;
      opts.pack_size = config_.pack_size;
      auto dfarm = std::make_shared<DFarmAspect>("Partition", opts);
      ctx_->attach(dfarm);
      gather_ = [dfarm](aop::Context& ctx) {
        return dfarm->gather_results(ctx);
      };
      break;
    }
    case Version::kFarmThreads:
    case Version::kFarmRmi:
    case Version::kFarmMpp:
    case Version::kFarmHybrid: {
      FarmAspect::Options opts;
      opts.duplicates = config_.filters;
      opts.pack_size = config_.pack_size;
      auto farm = std::make_shared<FarmAspect>("Partition", opts);
      ctx_->attach(farm);
      gather_ = [farm](aop::Context& ctx) { return farm->gather_results(ctx); };
      break;
    }
  }

  // --- concurrency (Table 1: all versions except Sequential and the
  // merged dynamic farm) -------------------------------------------------
  if (version_ == Version::kFarmThreads || version_ == Version::kPipeRmi ||
      version_ == Version::kFarmRmi || version_ == Version::kFarmMpp ||
      version_ == Version::kFarmHybrid) {
    auto conc = std::make_shared<ConcAspect>("Concurrency");
    conc->async_method<&PrimeFilter::process>()
        .async_method<&PrimeFilter::filter>()
        .guarded_method<&PrimeFilter::collect>();
    ctx_->attach(conc);
  }

  // --- the "one machine" constraint for the shared-memory version --------
  if (version_ == Version::kFarmThreads) {
    auto cpu = std::make_shared<LocalCpu>("LocalCpu", config_.local_cpu_slots);
    cpu->limit_method<&PrimeFilter::process>()
        .limit_method<&PrimeFilter::filter>();
    ctx_->attach(cpu);
  }

  // --- distribution -------------------------------------------------------
  if (distributed) {
    DistAspect::Options opts;
    opts.register_names = config_.register_names;
    auto dist = std::make_shared<DistAspect>("Distribution", *cluster_,
                                             *middleware_, opts);
    dist->distribute_method<&PrimeFilter::filter>()
        .distribute_method<&PrimeFilter::process>(/*allow_one_way=*/true)
        .distribute_method<&PrimeFilter::collect>(/*allow_one_way=*/true)
        .distribute_method<&PrimeFilter::take_results>();
    ctx_->attach(dist);
  }
}

SieveResult SieveHarness::run() {
  SieveResult result;
  auto candidates = odd_candidates(config_.max);
  const long long root = sieve_root(config_.max);

  const auto traffic = [this] {
    struct Totals {
      std::uint64_t sync = 0, one_way = 0, bytes = 0;
    } t;
    auto add = [&t](const cluster::MiddlewareStats& s) {
      t.sync += s.sync_calls.load() + s.creates.load();
      t.one_way += s.one_way_calls.load();
      t.bytes += s.bytes_sent.load() + s.bytes_received.load();
    };
    if (!backends_.empty()) {
      for (const auto& b : backends_) add(b->stats());
    } else if (middleware_) {
      add(middleware_->stats());
    }
    return t;
  };
  const auto before = traffic();

  common::Stopwatch sw;
  // ---- the entire core functionality (paper §5.1) ----
  auto p = ctx_->create<PrimeFilter>(2LL, root, config_.ns_per_op);
  ctx_->call<&PrimeFilter::process>(p, candidates);
  ctx_->quiesce();
  // ----------------------------------------------------
  result.seconds = sw.seconds();

  std::vector<long long> survivors =
      gather_ ? gather_(*ctx_) : ctx_->call<&PrimeFilter::take_results>(p);
  result.primes =
      count_primes_up_to(root) + static_cast<long long>(survivors.size());

  if (middleware_) {
    const auto after = traffic();
    result.sync_messages = after.sync - before.sync;
    result.one_way_messages = after.one_way - before.one_way;
    result.bytes_on_wire = after.bytes - before.bytes;
  }
  return result;
}

std::vector<std::string> SieveHarness::plugged_aspects() const {
  return ctx_->attached();
}

std::uint64_t measure_total_ops(long long max) {
  PrimeFilter filter(2, sieve_root(max), 0.0);
  auto candidates = odd_candidates(max);
  filter.process(candidates);
  return filter.ops();
}

double calibrate_ns_per_op(long long max, double target_seconds) {
  const auto ops = measure_total_ops(max);
  if (ops == 0) return 0.0;
  return target_seconds * 1e9 / static_cast<double>(ops);
}

}  // namespace apar::sieve
