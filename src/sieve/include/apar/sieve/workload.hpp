#pragma once

#include <vector>

namespace apar::sieve {

/// Integer square root (floor).
long long isqrt(long long n);

/// The base-prime bound the sieve decomposition uses: floor(sqrt(max)),
/// clamped so that the even prime 2 is always in the base range when max
/// itself admits primes (for max in {2,3}, isqrt(max) = 1 would otherwise
/// lose the prime 2 — candidates are odd numbers only).
long long sieve_root(long long max);

/// Reference Eratosthenes sieve: all primes <= n, ascending. Used to
/// verify every woven configuration and to build pipeline ctor partitions.
std::vector<long long> primes_up_to(long long n);

/// pi(n) via the reference sieve.
long long count_primes_up_to(long long n);

/// The paper's workload (§6): candidate numbers for the parallel sieve —
/// the odd numbers in (sqrt(max), max]. Together with the base primes
/// (<= sqrt(max)) their survivors are exactly the primes up to max.
std::vector<long long> odd_candidates(long long max);

/// Split the base prime range [2, sqrt(max)] into `k` contiguous value
/// ranges holding roughly equal numbers of primes; returns k (lo, hi)
/// pairs covering [2, sqrt(max)]. Used as the pipeline's ctor partitioner.
std::vector<std::pair<long long, long long>> balanced_prime_ranges(
    long long max, std::size_t k);

}  // namespace apar::sieve
