#pragma once

#include "apar/sieve/versions.hpp"

namespace apar::sieve::handcoded {

/// Hand-coded distributed prime sieve — the Figure 16 baseline ("Java"):
/// the same pipeline-over-RMI computation as the woven PipeRMI version,
/// written directly against the cluster middleware with explicit threads,
/// no AOP engine anywhere in the call path. The difference between this
/// and SieveHarness(kPipeRmi) is precisely the weaving overhead the paper
/// claims is below 5%.
SieveResult run_pipeline_rmi(const SieveConfig& config);

/// Hand-coded shared-memory farm (threads, no middleware) — the unwoven
/// counterpart of FarmThreads, used by the weaving-overhead ablation.
SieveResult run_farm_threads(const SieveConfig& config);

}  // namespace apar::sieve::handcoded
