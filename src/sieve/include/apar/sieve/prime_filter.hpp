#pragma once

#include <cstdint>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::sieve {

/// The paper's core functionality (§5.1): a prime filter holding the base
/// primes of a range, able to remove their multiples from packs of
/// candidate numbers. Deliberately sequential and NOT thread safe (the
/// scratch buffer is shared across calls) — protecting it is the
/// concurrency aspect's job, exactly as in the paper.
///
/// The third constructor argument is the *work model*: simulated
/// nanoseconds charged per trial division actually performed. On the
/// single-core reproduction host this calibrated sleep stands in for the
/// paper's real Xeon compute so that concurrent filters overlap like real
/// machines would (see DESIGN.md, "Substitutions"); 0 disables it.
class PrimeFilter {
 public:
  /// Computes the base primes in [pmin, pmax] (inclusive).
  PrimeFilter(long long pmin, long long pmax, double ns_per_op = 0.0);

  /// Remove from `pack` every number divisible by one of this filter's
  /// base primes. Candidates must exceed pmax (true for sieve packs, which
  /// start above sqrt(max)).
  void filter(std::vector<long long>& pack);

  /// Full sequential semantics: filter the pack and retain the survivors
  /// as results. What core functionality calls; what a farm worker runs.
  void process(std::vector<long long>& pack);

  /// Retain an already fully-filtered pack (pipeline exit).
  void collect(const std::vector<long long>& pack);

  /// Move the retained results out (empties the internal buffer).
  std::vector<long long> take_results();

  [[nodiscard]] const std::vector<long long>& primes() const {
    return primes_;
  }
  [[nodiscard]] long long pmin() const { return pmin_; }
  [[nodiscard]] long long pmax() const { return pmax_; }

  /// Trial divisions performed so far (the work-model currency).
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  void charge(std::uint64_t ops_delta);

  long long pmin_;
  long long pmax_;
  double ns_per_op_;
  std::vector<long long> primes_;
  std::vector<long long> scratch_;  // shared across calls: NOT thread safe
  std::vector<long long> found_;
  std::uint64_t ops_ = 0;
};

}  // namespace apar::sieve

APAR_CLASS_NAME(apar::sieve::PrimeFilter, "PrimeFilter");
APAR_METHOD_NAME(&apar::sieve::PrimeFilter::filter, "filter");
// filter's observable effect — the surviving pack — depends only on the
// pack values and the construction-fixed base primes, so a sieve segment
// is memoisable. ops() is a diagnostic, not part of the contract.
// process/collect/take_results mutate retained state and are NOT declared.
APAR_METHOD_IDEMPOTENT(&apar::sieve::PrimeFilter::filter);
APAR_METHOD_NAME(&apar::sieve::PrimeFilter::process, "process");
APAR_METHOD_NAME(&apar::sieve::PrimeFilter::collect, "collect");
APAR_METHOD_NAME(&apar::sieve::PrimeFilter::take_results, "take_results");

// Declared effect sets (per instance): "primes" is the construction-fixed
// base-prime table, "scratch" the shared survivor buffer, "results" the
// retained-pack store. ops_ is a diagnostic, outside the contract — same
// position the idempotency declaration above takes.
APAR_METHOD_READS(&apar::sieve::PrimeFilter::filter, "primes");
APAR_METHOD_WRITES(&apar::sieve::PrimeFilter::filter, "scratch");
APAR_METHOD_READS(&apar::sieve::PrimeFilter::process, "primes");
APAR_METHOD_WRITES(&apar::sieve::PrimeFilter::process, "scratch");
APAR_METHOD_WRITES(&apar::sieve::PrimeFilter::process, "results");
APAR_METHOD_WRITES(&apar::sieve::PrimeFilter::collect, "results");
APAR_METHOD_WRITES(&apar::sieve::PrimeFilter::take_results, "results");
// Every filter/process call clears "scratch" before reading it, so a
// memoized hit that skips the write is replay-equivalent — which is why
// caching filter is sound. It is still shared mutable state for the race
// analysis: unguarded concurrent filters racing on scratch stay an error.
APAR_STATE_IDEMPOTENT(apar::sieve::PrimeFilter, "scratch");
