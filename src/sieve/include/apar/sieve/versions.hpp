#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/cluster/cluster.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace apar::sieve {

/// The module combinations of the paper's Table 1, plus the unwoven
/// sequential core as the baseline every combination must reproduce.
///
///            | Partition    | Concurrency | Distribution
///  ----------+--------------+-------------+--------------
///  Sequential| —            | —           | —
///  FarmThreads Farm         | yes         | no
///  PipeRMI   | Pipeline     | yes         | RMI
///  FarmRMI   | Farm         | yes         | RMI
///  FarmDRMI  | Dynamic farm               | RMI
///  FarmMPP   | Farm         | yes         | MPP
enum class Version {
  kSequential,
  kFarmThreads,
  kPipeRmi,
  kFarmRmi,
  kFarmDRmi,
  kFarmMpp,
  /// Extension beyond Table 1: the hybrid middleware of paper §5.3 —
  /// MPP for the performance-critical filter traffic, RMI for control.
  kFarmHybrid,
};

[[nodiscard]] std::string_view version_name(Version v);

/// All Table 1 rows (without the sequential baseline).
[[nodiscard]] const std::vector<Version>& table1_versions();

/// Table 1 rows plus the §5.3 hybrid extension.
[[nodiscard]] const std::vector<Version>& extended_versions();

/// Workload and platform parameters shared by tests/examples/benches.
struct SieveConfig {
  long long max = 2'000'000;      ///< largest number to sieve
  std::size_t filters = 2;        ///< duplicates (paper's x-axis, 1..16)
  std::size_t pack_size = 20'000; ///< candidates per message (50 packs)
  double ns_per_op = 0.0;         ///< simulated compute per trial division
  std::size_t nodes = 7;          ///< simulated cluster size (paper: 7)
  std::size_t node_executors = 4; ///< hw contexts per node (dual Xeon HT)
  std::size_t local_cpu_slots = 4;///< hw contexts of the "local" machine
  bool register_names = true;     ///< RMI PS<n> naming dance
  /// Zero-cost transport (functional tests): keeps RMI/MPP semantics
  /// (formats, one-way, registry) but drops the simulated delays.
  bool loopback_costs = false;
};

/// One timed execution's outcome.
struct SieveResult {
  long long primes = 0;        ///< total primes found (base + survivors)
  double seconds = 0.0;        ///< create + process + quiesce, wall clock
  std::uint64_t sync_messages = 0;
  std::uint64_t one_way_messages = 0;
  std::uint64_t bytes_on_wire = 0;
};

/// Builds and owns one woven sieve configuration: simulated cluster,
/// middleware, weaving context, and the plugged aspect set for the chosen
/// Table 1 version. The core code executed by run() is IDENTICAL for every
/// version — three lines, exactly the paper's §5.1 main:
///
///   auto p = ctx.create<PrimeFilter>(2, sqrt(max), work);
///   ctx.call<&PrimeFilter::process>(p, candidates);
///   ctx.quiesce();
///
/// Everything else is plugged aspects.
class SieveHarness {
 public:
  SieveHarness(Version version, SieveConfig config);
  ~SieveHarness();

  SieveHarness(const SieveHarness&) = delete;
  SieveHarness& operator=(const SieveHarness&) = delete;

  /// Execute the sieve once; verifies nothing (see primes count in the
  /// result — callers compare against the reference).
  SieveResult run();

  [[nodiscard]] Version version() const { return version_; }
  [[nodiscard]] const SieveConfig& config() const { return config_; }
  [[nodiscard]] aop::Context& context() { return *ctx_; }

  /// Names of the aspects currently plugged (Table 1 evidence).
  [[nodiscard]] std::vector<std::string> plugged_aspects() const;

 private:
  void build();

  Version version_;
  SieveConfig config_;
  std::unique_ptr<cluster::Cluster> cluster_;
  /// Backend middlewares owned by the harness (two for the hybrid).
  std::vector<std::unique_ptr<cluster::Middleware>> backends_;
  std::unique_ptr<cluster::Middleware> middleware_;
  std::unique_ptr<aop::Context> ctx_;
  std::function<std::vector<long long>(aop::Context&)> gather_;
};

/// Total trial divisions a sequential run performs for `max` — used to
/// calibrate ns_per_op against a target sequential duration.
std::uint64_t measure_total_ops(long long max);

/// ns_per_op such that a sequential run's simulated compute is roughly
/// `target_seconds`.
double calibrate_ns_per_op(long long max, double target_seconds);

}  // namespace apar::sieve
