#include "apar/sieve/prime_filter.hpp"

#include <chrono>
#include <thread>

#include "apar/sieve/workload.hpp"

namespace apar::sieve {

PrimeFilter::PrimeFilter(long long pmin, long long pmax, double ns_per_op)
    : pmin_(pmin), pmax_(pmax), ns_per_op_(ns_per_op) {
  for (long long p : primes_up_to(pmax)) {
    if (p >= pmin) primes_.push_back(p);
  }
}

void PrimeFilter::filter(std::vector<long long>& pack) {
  std::uint64_t divisions = 0;
  scratch_.clear();
  for (const long long candidate : pack) {
    bool composite = false;
    for (const long long p : primes_) {
      ++divisions;
      if (candidate % p == 0) {
        composite = true;
        break;
      }
    }
    if (!composite) scratch_.push_back(candidate);
  }
  pack = scratch_;
  ops_ += divisions;
  charge(divisions);
}

void PrimeFilter::process(std::vector<long long>& pack) {
  filter(pack);
  collect(pack);
}

void PrimeFilter::collect(const std::vector<long long>& pack) {
  found_.insert(found_.end(), pack.begin(), pack.end());
}

std::vector<long long> PrimeFilter::take_results() {
  std::vector<long long> out;
  out.swap(found_);
  return out;
}

void PrimeFilter::charge(std::uint64_t ops_delta) {
  if (ns_per_op_ <= 0.0 || ops_delta == 0) return;
  // Simulated compute: sleeping (rather than spinning) lets concurrent
  // filters overlap on the single-core host the way real machines would.
  std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
      ns_per_op_ * static_cast<double>(ops_delta)));
}

}  // namespace apar::sieve
