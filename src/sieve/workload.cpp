#include "apar/sieve/workload.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace apar::sieve {

long long isqrt(long long n) {
  if (n < 0) return 0;
  long long r = 0;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

long long sieve_root(long long max) {
  if (max < 2) return isqrt(max);
  return std::max<long long>(isqrt(max), 2);
}

std::vector<long long> primes_up_to(long long n) {
  std::vector<long long> primes;
  if (n < 2) return primes;
  std::vector<bool> composite(static_cast<std::size_t>(n) + 1, false);
  for (long long p = 2; p <= n; ++p) {
    if (composite[static_cast<std::size_t>(p)]) continue;
    primes.push_back(p);
    for (long long m = p * p; m <= n; m += p)
      composite[static_cast<std::size_t>(m)] = true;
  }
  return primes;
}

long long count_primes_up_to(long long n) {
  return static_cast<long long>(primes_up_to(n).size());
}

std::vector<long long> odd_candidates(long long max) {
  std::vector<long long> out;
  const long long root = sieve_root(max);
  long long first = root + 1;
  if (first % 2 == 0) ++first;
  if (first < 3) first = 3;
  out.reserve(static_cast<std::size_t>((max - first) / 2 + 1));
  for (long long x = first; x <= max; x += 2) out.push_back(x);
  return out;
}

std::vector<std::pair<long long, long long>> balanced_prime_ranges(
    long long max, std::size_t k) {
  if (k == 0) k = 1;
  const long long root = sieve_root(max);
  const auto primes = primes_up_to(root);
  std::vector<std::pair<long long, long long>> ranges;
  ranges.reserve(k);
  const std::size_t total = primes.size();
  std::size_t begin = 0;
  long long lo = 2;
  for (std::size_t i = 0; i < k; ++i) {
    // Primes are distributed as evenly as possible: the first (total % k)
    // ranges get one extra.
    const std::size_t share = total / k + (i < total % k ? 1 : 0);
    const std::size_t end = begin + share;
    const long long hi =
        (i + 1 == k) ? root : (end > 0 && end <= total ? primes[end - 1] : lo);
    ranges.emplace_back(lo, hi);
    lo = hi + 1;
    begin = end;
  }
  return ranges;
}

}  // namespace apar::sieve
