#include "apar/cluster/dispatcher.hpp"

namespace apar::cluster {

Dispatcher::Dispatcher(const rpc::Registry& registry, std::string label)
    : registry_(registry), label_(std::move(label)) {}

ObjectId Dispatcher::create(std::string_view class_name,
                            serial::Reader& ctor_args) {
  const rpc::ClassEntry& cls = registry_.find(class_name);
  std::shared_ptr<void> instance = cls.construct(ctor_args);
  const ObjectId oid = next_object_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(table_mutex_);
    table_[oid] = Entry{std::move(instance), &cls};
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  return oid;
}

std::vector<std::byte> Dispatcher::call(ObjectId object,
                                        std::string_view method,
                                        serial::Reader& args,
                                        serial::Format format) {
  Entry entry;
  {
    std::lock_guard lock(table_mutex_);
    auto it = table_.find(object);
    if (it == table_.end())
      throw rpc::RpcError(label_ + ": no object " + std::to_string(object));
    entry = it->second;
  }
  const auto& m = entry.cls->method(method);

  serial::Writer out(format);
  {
    // Per-object monitor: one call at a time per hosted object, like the
    // paper's single-threaded MPP server loop per object.
    auto guard = monitors_.acquire(entry.instance.get());
    m.invoke(entry.instance.get(), args, out);
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  return out.take();
}

std::size_t Dispatcher::object_count() const {
  std::lock_guard lock(table_mutex_);
  return table_.size();
}

std::shared_ptr<void> Dispatcher::object(ObjectId id) const {
  std::lock_guard lock(table_mutex_);
  auto it = table_.find(id);
  return it == table_.end() ? nullptr : it->second.instance;
}

}  // namespace apar::cluster
