#include "apar/cluster/middleware.hpp"

namespace apar::cluster {

void SimMiddleware::record_call_metrics(
    std::string_view method, std::chrono::steady_clock::time_point started,
    std::size_t payload_bytes) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels labels{{"method", std::string(method)},
                           {"middleware", std::string(name_)}};
  registry.histogram("middleware.invoke_us", labels)
      ->record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - started)
                   .count() /
               1000.0);
  registry
      .histogram("middleware.payload_bytes", labels,
                 obs::Histogram::bytes_bounds())
      ->record(static_cast<double>(payload_bytes));
}

void SimMiddleware::charge_client_link(std::size_t bytes) {
  const double us = costs_.per_kb_us * (static_cast<double>(bytes) / 1024.0);
  if (us <= 0.0) return;
  std::lock_guard lock(link_mutex_);
  charge_us(us);
}

void SimMiddleware::charge_client_setup(std::size_t bytes) {
  // Connection setup and marshalling are client-CPU work: they serialize
  // with each other and with link occupancy no matter how many caller
  // threads exist. This is what keeps the client-woven RMI pipeline flat
  // in Figure 17 — 16x the messages of the farm, all squeezed through one
  // client.
  const double us =
      costs_.handshake_us +
      costs_.per_kb_us * (static_cast<double>(bytes) / 1024.0);
  if (us <= 0.0) return;
  std::lock_guard lock(link_mutex_);
  charge_us(us);
}

Reply SimMiddleware::send_and_wait(Message msg) {
  auto promise = std::make_shared<concurrency::Promise<Reply>>();
  auto future = promise->future();
  msg.reply_to = promise;
  const std::size_t bytes = msg.payload.size();
  if (!cluster_.route(std::move(msg)))
    throw rpc::RpcError("destination node is shut down");
  Reply reply = future.get();
  // Reply bytes cross the client link too; latency is charged on the
  // waiting client thread (it overlaps across threads, occupancy doesn't).
  charge_client_link(reply.payload.size());
  charge_us(costs_.latency_us);
  stats_.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  stats_.bytes_received.fetch_add(reply.payload.size(),
                                  std::memory_order_relaxed);
  if (!reply.error.empty()) throw rpc::RpcError(reply.error);
  return reply;
}

RemoteHandle SimMiddleware::create(NodeId node, std::string_view class_name,
                                   std::vector<std::byte> ctor_args) {
  std::chrono::steady_clock::time_point started{};
  if (metrics_on_) started = std::chrono::steady_clock::now();
  const std::size_t request_bytes = ctor_args.size();
  charge_client_setup(ctor_args.size());
  Message msg;
  msg.kind = Message::Kind::kCreate;
  msg.dst = node;
  msg.class_name = std::string(class_name);
  msg.format = format_;
  msg.deliver_cost_us = costs_.latency_us;
  msg.payload = std::move(ctor_args);
  stats_.creates.fetch_add(1, std::memory_order_relaxed);
  const Reply reply = send_and_wait(std::move(msg));
  if (metrics_on_) record_call_metrics("new", started, request_bytes);
  return RemoteHandle{node, reply.object};
}

std::vector<std::byte> SimMiddleware::invoke(const RemoteHandle& target,
                                             std::string_view method,
                                             std::vector<std::byte> args) {
  std::chrono::steady_clock::time_point started{};
  if (metrics_on_) started = std::chrono::steady_clock::now();
  const std::size_t request_bytes = args.size();
  charge_client_setup(args.size());
  Message msg;
  msg.kind = Message::Kind::kCall;
  msg.dst = target.node;
  msg.object = target.object;
  msg.method = std::string(method);
  msg.format = format_;
  msg.deliver_cost_us = costs_.latency_us;
  msg.payload = std::move(args);
  stats_.sync_calls.fetch_add(1, std::memory_order_relaxed);
  auto payload = send_and_wait(std::move(msg)).payload;
  if (metrics_on_) record_call_metrics(method, started, request_bytes);
  return payload;
}

void SimMiddleware::invoke_one_way(const RemoteHandle& target,
                                   std::string_view method,
                                   std::vector<std::byte> args) {
  if (!one_way_) {
    // RMI has no fire-and-forget: degrade to a synchronous call and drop
    // the reply — exactly what a void remote method does in Java RMI.
    // invoke() records the call's metrics, so no probe here.
    invoke(target, method, std::move(args));
    return;
  }
  // For a true one-way send the recorded latency is the client-side
  // hand-off (setup + routing), not a round trip.
  std::chrono::steady_clock::time_point started{};
  if (metrics_on_) started = std::chrono::steady_clock::now();
  const std::size_t request_bytes = args.size();
  charge_client_setup(args.size());
  Message msg;
  msg.kind = Message::Kind::kOneWay;
  msg.dst = target.node;
  msg.object = target.object;
  msg.method = std::string(method);
  msg.format = format_;
  msg.deliver_cost_us = costs_.latency_us;
  stats_.one_way_calls.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(args.size(), std::memory_order_relaxed);
  msg.payload = std::move(args);
  cluster_.one_way_started();
  if (!cluster_.route(std::move(msg))) {
    // Record the failure; it surfaces (and rethrows) at the next drain(),
    // like any other asynchronous one-way error.
    cluster_.one_way_finished("destination node is shut down");
  }
  if (metrics_on_) record_call_metrics(method, started, request_bytes);
}

std::optional<RemoteHandle> SimMiddleware::lookup(std::string_view name) {
  charge_us(costs_.lookup_us);
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  return cluster_.name_server().lookup(name);
}

}  // namespace apar::cluster
