#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>

#include "apar/serial/archive.hpp"

namespace apar::cluster::rpc {

/// Raised on unknown classes/methods or argument decoding failures.
class RpcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Type-erased server-side dispatch table for one distributable class:
/// how to construct an instance from marshalled arguments and how to invoke
/// each exposed method. This is the C++ analogue of the interface+skeleton
/// plumbing Java RMI generates — here it is explicit, tiny, and owned by
/// the distribution layer, so core classes remain middleware-free (paper
/// §4.3, code modifications 1-2 localized in one module).
struct ClassEntry {
  std::string name;
  /// Construct an instance from marshalled ctor args.
  std::function<std::shared_ptr<void>(serial::Reader&)> construct;

  struct MethodEntry {
    std::string name;
    /// Invoke on a type-erased instance; args come from `in`, the result
    /// (if any) is appended to `out`.
    std::function<void(void* object, serial::Reader& in, serial::Writer& out)>
        invoke;
  };
  std::map<std::string, MethodEntry, std::less<>> methods;

  [[nodiscard]] const MethodEntry& method(std::string_view method_name) const {
    auto it = methods.find(method_name);
    if (it == methods.end())
      throw RpcError("unknown method '" + std::string(method_name) +
                     "' on class '" + name + "'");
    return it->second;
  }
};

class Registry;

/// Fluent registration helper returned by Registry::bind<T>().
template <class T>
class ClassBinder {
 public:
  ClassBinder(ClassEntry& entry) : entry_(entry) {}

  /// Expose a constructor T(A...); exactly one per class.
  template <class... A>
  ClassBinder& ctor() {
    entry_.construct = [](serial::Reader& in) -> std::shared_ptr<void> {
      std::tuple<std::decay_t<A>...> args{};
      std::apply([&](auto&... a) { (in.value(a), ...); }, args);
      return std::apply(
          [](auto&... a) { return std::make_shared<T>(std::move(a)...); },
          args);
    };
    return *this;
  }

  /// Expose method M under `name`.
  template <auto M>
  ClassBinder& method(std::string name) {
    using Traits = MethodTraits<decltype(M)>;
    static_assert(std::is_same_v<typename Traits::Class, T>,
                  "method does not belong to the bound class");
    entry_.methods[name] = ClassEntry::MethodEntry{
        name, make_invoker<M>(typename Traits::ArgsTuple{})};
    return *this;
  }

 private:
  template <class F>
  struct MethodTraits;
  template <class C, class R, class... A>
  struct MethodTraits<R (C::*)(A...)> {
    using Class = C;
    using Ret = R;
    struct ArgsTuple {
      using Decayed = std::tuple<std::decay_t<A>...>;
      using Exact = std::tuple<A...>;
    };
  };
  template <class C, class R, class... A>
  struct MethodTraits<R (C::*)(A...) const> {
    using Class = C;
    using Ret = R;
    struct ArgsTuple {
      using Decayed = std::tuple<std::decay_t<A>...>;
      using Exact = std::tuple<A...>;
    };
  };

  template <auto M, class ArgsTag>
  static std::function<void(void*, serial::Reader&, serial::Writer&)>
  make_invoker(ArgsTag) {
    using Traits = MethodTraits<decltype(M)>;
    using R = typename Traits::Ret;
    using Decayed = typename ArgsTag::Decayed;
    return [](void* object, serial::Reader& in, serial::Writer& out) {
      Decayed args{};
      std::apply([&](auto&... a) { (in.value(a), ...); }, args);
      T* self = static_cast<T*>(object);
      if constexpr (std::is_void_v<R>) {
        std::apply([&](auto&... a) { (self->*M)(a...); }, args);
        // Mutated reference parameters travel back in the reply so the
        // caller can observe in-place updates (RMI-like copy-restore).
        std::apply([&](const auto&... a) { (out.value(a), ...); }, args);
      } else {
        R result =
            std::apply([&](auto&... a) { return (self->*M)(a...); }, args);
        std::apply([&](const auto&... a) { (out.value(a), ...); }, args);
        out.value(result);
      }
    };
  }

  ClassEntry& entry_;
};

/// Registry of distributable classes — the dispatch side of the simulated
/// middleware. Bind every class you intend to place on remote nodes:
///
///   registry.bind<PrimeFilter>("PrimeFilter")
///       .ctor<long long, long long>()
///       .method<&PrimeFilter::filter>("filter");
class Registry {
 public:
  template <class T>
  ClassBinder<T> bind(std::string name) {
    ClassEntry& entry = entries_[name];
    entry.name = std::move(name);
    return ClassBinder<T>(entry);
  }

  [[nodiscard]] const ClassEntry& find(std::string_view class_name) const {
    auto it = entries_.find(class_name);
    if (it == entries_.end())
      throw RpcError("unknown class '" + std::string(class_name) + "'");
    return it->second;
  }

  [[nodiscard]] bool contains(std::string_view class_name) const {
    return entries_.find(class_name) != entries_.end();
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, ClassEntry, std::less<>> entries_;
};

}  // namespace apar::cluster::rpc
