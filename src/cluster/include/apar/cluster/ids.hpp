#pragma once

#include <cstdint>
#include <string>

namespace apar::cluster {

/// Index of a simulated compute node within its Cluster.
using NodeId = std::uint32_t;

/// Per-node object-table index of a remotely created object.
using ObjectId = std::uint64_t;

/// Correlates a request with its reply (diagnostics only — replies travel
/// on per-call promises in this in-process simulation).
using CallId = std::uint64_t;

/// Location of a remote object: which node, which slot.
struct RemoteHandle {
  NodeId node = 0;
  ObjectId object = 0;

  friend bool operator==(const RemoteHandle&, const RemoteHandle&) = default;

  [[nodiscard]] std::string str() const {
    return "node " + std::to_string(node) + " / object " +
           std::to_string(object);
  }
};

}  // namespace apar::cluster
