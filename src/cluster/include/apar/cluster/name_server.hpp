#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apar/cluster/ids.hpp"

namespace apar::cluster {

/// The RMI registry analogue (paper §5.3, modification 2/3): remote
/// instances are registered under generated names ("PS1", "PS2", ...) and
/// clients bind to them by name.
class NameServer {
 public:
  /// Register `handle` under `name`; re-registering a name rebinds it.
  void bind(std::string name, RemoteHandle handle);

  /// Look up a name; nullopt if unbound. (The middleware charges its
  /// lookup cost before calling this.)
  [[nodiscard]] std::optional<RemoteHandle> lookup(std::string_view name) const;

  void unbind(std::string_view name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RemoteHandle, std::less<>> bindings_;
};

}  // namespace apar::cluster
