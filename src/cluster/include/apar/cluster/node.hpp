#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "apar/cluster/ids.hpp"
#include "apar/cluster/message.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/concurrency/sync_registry.hpp"
#include "apar/concurrency/work_queue.hpp"

namespace apar::obs {
class Counter;
class Histogram;
}  // namespace apar::obs

namespace apar::cluster {

class Cluster;

/// One simulated compute node: a mailbox, a small executor pool (default 4,
/// matching the paper's dual-Xeon-with-HyperThreading machines), and an
/// object table holding remotely created instances.
///
/// Executors charge each message's wire cost before dispatching it, and
/// take a per-object monitor during execution — mirroring the paper's MPP
/// server loop (Figure 15), which serves each object from a single receive
/// loop and therefore never runs two calls on one object concurrently.
class Node {
 public:
  Node(Cluster& cluster, NodeId id, const rpc::Registry& registry,
       std::size_t executors);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  /// Enqueue a message for this node. Returns false if the node stopped.
  bool deliver(Message msg);

  /// Number of objects in the table (diagnostic).
  [[nodiscard]] std::size_t object_count() const;

  /// Direct access to a hosted object (test/diagnostic use; the object
  /// stays owned by the node).
  [[nodiscard]] std::shared_ptr<void> object(ObjectId id) const;

  /// Stop accepting messages and join executors (drains the mailbox).
  void shutdown();

  /// Crash the node: queued requests are dropped with an error reply (or a
  /// one-way failure recorded with the cluster), executors stop, and
  /// further deliveries are refused. Used by the fault-injection tests and
  /// the failover aspect's scenarios.
  void crash();

  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_relaxed);
  }

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t executed_calls() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void executor_loop();
  void handle(Message& msg);
  void handle_create(Message& msg);
  void handle_call(Message& msg);

  struct Entry {
    std::shared_ptr<void> instance;
    const rpc::ClassEntry* cls = nullptr;
  };

  Cluster& cluster_;
  NodeId id_;
  const rpc::Registry& registry_;

  concurrency::WorkQueue<Message> mailbox_;
  std::vector<std::thread> executors_;

  mutable std::mutex table_mutex_;
  std::map<ObjectId, Entry> table_;
  std::atomic<ObjectId> next_object_{1};

  concurrency::SyncRegistry monitors_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> crashed_{false};

  // Null unless obs::metrics_enabled() at construction. The mailbox's
  // depth/throughput series are enabled alongside ("node<N>.mailbox").
  std::shared_ptr<obs::Histogram> handle_us_;
  std::shared_ptr<obs::Counter> handled_counter_;
};

}  // namespace apar::cluster
