#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "apar/cluster/dispatcher.hpp"
#include "apar/cluster/ids.hpp"
#include "apar/cluster/message.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/concurrency/work_queue.hpp"

namespace apar::obs {
class Counter;
class Histogram;
}  // namespace apar::obs

namespace apar::cluster {

class Cluster;

/// One simulated compute node: a mailbox, a small executor pool (default 4,
/// matching the paper's dual-Xeon-with-HyperThreading machines), and a
/// Dispatcher holding remotely created instances.
///
/// Executors charge each message's wire cost before handing it to the
/// shared transport-agnostic Dispatcher, which takes a per-object monitor
/// during execution — mirroring the paper's MPP server loop (Figure 15),
/// which serves each object from a single receive loop and therefore never
/// runs two calls on one object concurrently. net::TcpServer drives the
/// same Dispatcher from real socket connections.
class Node {
 public:
  Node(Cluster& cluster, NodeId id, const rpc::Registry& registry,
       std::size_t executors);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  /// Enqueue a message for this node. Returns false if the node stopped.
  bool deliver(Message msg);

  /// Number of objects in the table (diagnostic).
  [[nodiscard]] std::size_t object_count() const;

  /// Direct access to a hosted object (test/diagnostic use; the object
  /// stays owned by the node).
  [[nodiscard]] std::shared_ptr<void> object(ObjectId id) const;

  /// Stop accepting messages and join executors (drains the mailbox).
  void shutdown();

  /// Crash the node: queued requests are dropped with an error reply (or a
  /// one-way failure recorded with the cluster), executors stop, and
  /// further deliveries are refused. Used by the fault-injection tests and
  /// the failover aspect's scenarios.
  void crash();

  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_relaxed);
  }

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t executed_calls() const {
    return dispatcher_.executed_calls();
  }

  /// The shared request-dispatch path (object table + per-object monitors).
  [[nodiscard]] Dispatcher& dispatcher() { return dispatcher_; }

 private:
  void executor_loop();
  void handle(Message& msg);
  void handle_create(Message& msg);
  void handle_call(Message& msg);

  Cluster& cluster_;
  NodeId id_;
  Dispatcher dispatcher_;

  concurrency::WorkQueue<Message> mailbox_;
  std::vector<std::thread> executors_;

  std::atomic<bool> stopped_{false};
  std::atomic<bool> crashed_{false};

  // Null unless obs::metrics_enabled() at construction. The mailbox's
  // depth/throughput series are enabled alongside ("node<N>.mailbox").
  std::shared_ptr<obs::Histogram> handle_us_;
  std::shared_ptr<obs::Counter> handled_counter_;
};

}  // namespace apar::cluster
