#pragma once

#include <cstddef>
#include <string>

#include "apar/cluster/ids.hpp"

namespace apar::cluster {

/// The distribution aspect's view of "the machines out there", independent
/// of whether they are simulated in-process nodes (Cluster) or real remote
/// servers reached over TCP (net::TcpFabric). The aspect only ever needs
/// three things from the fabric: how many placement targets exist, how to
/// publish a name binding (the Figure-14 "PS<n>" registry dance), and how
/// to wait for outstanding one-way traffic at quiesce.
class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Number of placement targets (NodeIds are indices into [0, size())).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Publish `handle` under `name` in whatever name service this fabric
  /// uses; re-binding a name replaces it.
  virtual void bind_name(std::string name, RemoteHandle handle) = 0;

  /// Block until every one-way request issued through this fabric has
  /// executed; rethrows the first asynchronous failure.
  virtual void drain() = 0;
};

}  // namespace apar::cluster
