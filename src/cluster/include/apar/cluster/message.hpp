#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "apar/cluster/ids.hpp"
#include "apar/concurrency/future.hpp"
#include "apar/serial/archive.hpp"

namespace apar::cluster {

/// Reply to a create/call request. `error` is empty on success.
struct Reply {
  ObjectId object = 0;              ///< create: the new object's id
  std::vector<std::byte> payload;   ///< call: copy-restored args + result
  std::string error;
};

/// A simulated wire message. Payloads are genuinely serialized with the
/// middleware's wire format; only the reply channel is an in-process
/// promise (the simulation's stand-in for a response socket).
struct Message {
  enum class Kind { kCreate, kCall, kOneWay };

  Kind kind = Kind::kCall;
  NodeId src = 0;
  NodeId dst = 0;
  CallId call_id = 0;
  std::string class_name;  ///< kCreate: class to instantiate
  ObjectId object = 0;     ///< kCall/kOneWay: target object
  std::string method;      ///< kCall/kOneWay: method name
  std::vector<std::byte> payload;
  serial::Format format = serial::Format::kCompact;
  /// Wire cost (latency + bytes) charged on the receiving node before the
  /// request executes.
  double deliver_cost_us = 0.0;
  /// Where the reply goes; null for one-way sends.
  std::shared_ptr<concurrency::Promise<Reply>> reply_to;
};

}  // namespace apar::cluster
