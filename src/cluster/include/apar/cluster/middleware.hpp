#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "apar/cluster/cluster.hpp"
#include "apar/cluster/cost_model.hpp"
#include "apar/cluster/ids.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/serial/archive.hpp"

namespace apar::cluster {

/// Traffic counters, maintained by every middleware implementation.
/// Every implementation accounts BOTH directions at the same seam: the
/// marshalled request payload it puts on the (simulated or real) wire goes
/// into bytes_sent, and whatever payload comes back — a sync reply, a
/// degraded one-way's echoed reply, or a transport ack — into
/// bytes_received. tests/cluster/test_middleware_stats.cpp asserts this
/// parity for every shipped implementation.
struct MiddlewareStats {
  std::atomic<std::uint64_t> creates{0};
  std::atomic<std::uint64_t> sync_calls{0};
  std::atomic<std::uint64_t> one_way_calls{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> lookups{0};

  /// Copyable point-in-time view. The atomic struct itself cannot be
  /// copied, which previously forced aggregators (HybridMiddleware) to
  /// sum field-by-field — a new counter silently vanished from the
  /// aggregate. snapshot()/store() are now the single place that
  /// enumerates the fields.
  struct Snapshot {
    std::uint64_t creates = 0;
    std::uint64_t sync_calls = 0;
    std::uint64_t one_way_calls = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t lookups = 0;

    Snapshot& operator+=(const Snapshot& other) {
      creates += other.creates;
      sync_calls += other.sync_calls;
      one_way_calls += other.one_way_calls;
      bytes_sent += other.bytes_sent;
      bytes_received += other.bytes_received;
      lookups += other.lookups;
      return *this;
    }
    friend Snapshot operator+(Snapshot a, const Snapshot& b) {
      a += b;
      return a;
    }
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.creates = creates.load(std::memory_order_relaxed);
    s.sync_calls = sync_calls.load(std::memory_order_relaxed);
    s.one_way_calls = one_way_calls.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received.load(std::memory_order_relaxed);
    s.lookups = lookups.load(std::memory_order_relaxed);
    return s;
  }

  /// Overwrite the counters from a snapshot (aggregation views only).
  void store(const Snapshot& s) {
    creates.store(s.creates, std::memory_order_relaxed);
    sync_calls.store(s.sync_calls, std::memory_order_relaxed);
    one_way_calls.store(s.one_way_calls, std::memory_order_relaxed);
    bytes_sent.store(s.bytes_sent, std::memory_order_relaxed);
    bytes_received.store(s.bytes_received, std::memory_order_relaxed);
    lookups.store(s.lookups, std::memory_order_relaxed);
  }
};

/// Client-side middleware interface — the seam that lets the distribution
/// aspect "switch among underlying middleware implementations ... such as
/// CORBA, Java RMI and MPI" (paper §4.3) without touching partition or
/// concurrency code.
class Middleware {
 public:
  virtual ~Middleware() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual serial::Format wire_format() const = 0;
  /// True if void calls may be sent without waiting for a reply.
  [[nodiscard]] virtual bool supports_one_way() const = 0;

  /// Create an instance of a registered class on `node` from marshalled
  /// constructor arguments; blocks until the object exists.
  virtual RemoteHandle create(NodeId node, std::string_view class_name,
                              std::vector<std::byte> ctor_args) = 0;

  /// Synchronous request/reply call. The reply payload carries the
  /// copy-restored (possibly mutated) arguments followed by the result.
  virtual std::vector<std::byte> invoke(const RemoteHandle& target,
                                        std::string_view method,
                                        std::vector<std::byte> args) = 0;

  /// Fire-and-forget call; completion is observable via Cluster::drain().
  /// Middlewares without one-way support degrade to invoke().
  virtual void invoke_one_way(const RemoteHandle& target,
                              std::string_view method,
                              std::vector<std::byte> args) = 0;

  /// Charged name-server lookup (the RMI registry round-trip).
  virtual std::optional<RemoteHandle> lookup(std::string_view name) = 0;

  [[nodiscard]] virtual const MiddlewareStats& stats() const = 0;
  [[nodiscard]] virtual const CostModel& costs() const = 0;

  /// True when calls leave the process over a real wire (sockets). For
  /// wire transports, argument serializability is a hard requirement, not
  /// a simulation convenience — the weave-plan analysis escalates
  /// unserializable-argument hazards from warning to error when the advice
  /// targets such a middleware. Decorators delegate to their inner
  /// middleware; hybrids answer true if either backend does.
  [[nodiscard]] virtual bool wire_transport() const { return false; }

  /// Which middleware actually carries calls to `method` ("new" for
  /// creations). Plain middlewares return themselves; a hybrid returns one
  /// of its backends. Callers must encode arguments with the ROUTED
  /// middleware's wire format.
  [[nodiscard]] virtual Middleware& route_for(std::string_view method) {
    (void)method;
    return *this;
  }
};

/// Shared implementation over the simulated Cluster; concrete middlewares
/// differ only in cost model, wire format and one-way capability.
class SimMiddleware : public Middleware {
 public:
  SimMiddleware(Cluster& cluster, CostModel costs, serial::Format format,
                bool one_way, std::string_view name)
      : cluster_(cluster),
        costs_(costs),
        format_(format),
        one_way_(one_way),
        name_(name) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] serial::Format wire_format() const override { return format_; }
  [[nodiscard]] bool supports_one_way() const override { return one_way_; }

  RemoteHandle create(NodeId node, std::string_view class_name,
                      std::vector<std::byte> ctor_args) override;
  std::vector<std::byte> invoke(const RemoteHandle& target,
                                std::string_view method,
                                std::vector<std::byte> args) override;
  void invoke_one_way(const RemoteHandle& target, std::string_view method,
                      std::vector<std::byte> args) override;
  std::optional<RemoteHandle> lookup(std::string_view name) override;

  [[nodiscard]] const MiddlewareStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] const CostModel& costs() const override { return costs_; }

  [[nodiscard]] Cluster& cluster() { return cluster_; }

 private:
  Reply send_and_wait(Message msg);

  /// Feed per-method invoke latency and request-payload-size histograms
  /// into the global registry, labelled {"middleware": name, "method":
  /// method} ("new" for creations). Only called when metrics_on_.
  void record_call_metrics(std::string_view method,
                           std::chrono::steady_clock::time_point started,
                           std::size_t payload_bytes);

  /// The client machine's network link is a shared serial resource: every
  /// request and reply byte crosses it, one message at a time. This is
  /// what keeps a client-woven pipeline from scaling (paper §6: "each
  /// message must cross all pipeline elements") — latency overlaps across
  /// threads, but link occupancy does not.
  void charge_client_link(std::size_t bytes);

  /// Per-call client-side setup: connection handshake plus request
  /// marshalling, also serialized on the client (it is CPU + link work).
  void charge_client_setup(std::size_t bytes);

  std::mutex link_mutex_;
  Cluster& cluster_;
  CostModel costs_;
  serial::Format format_;
  bool one_way_;
  std::string_view name_;
  MiddlewareStats stats_;
  // Latched at construction so the unobserved call path pays one bool test
  // and no clock reads.
  const bool metrics_on_ = obs::metrics_enabled();
};

/// Java-RMI-like middleware: per-call handshake, verbose self-describing
/// marshalling, registry lookups, strictly synchronous request/reply.
class RmiMiddleware final : public SimMiddleware {
 public:
  explicit RmiMiddleware(Cluster& cluster, CostModel costs = CostModel::rmi())
      : SimMiddleware(cluster, costs, serial::Format::kVerbose,
                      /*one_way=*/false, "RMI") {}
};

/// MPP-like middleware (java.nio message passing): persistent channels,
/// compact frames, one-way sends.
class MppMiddleware final : public SimMiddleware {
 public:
  explicit MppMiddleware(Cluster& cluster, CostModel costs = CostModel::mpp())
      : SimMiddleware(cluster, costs, serial::Format::kCompact,
                      /*one_way=*/true, "MPP") {}
};

/// Hybrid middleware (paper §5.3: "it is also possible to develop a hybrid
/// implementation, using MPP and RMI ... using MPI for performance
/// critical parts, and Java RMI in the remainder parts").
///
/// Calls to the registered fast-path methods travel over `fast` (MPP);
/// everything else — creations, result gathering, control traffic — over
/// `control` (RMI). Both backends keep their own statistics.
class HybridMiddleware final : public Middleware {
 public:
  HybridMiddleware(Middleware& control, Middleware& fast,
                   std::vector<std::string> fast_methods)
      : control_(control), fast_(fast) {
    auto set = std::make_shared<MethodSet>();
    for (auto& m : fast_methods) set->insert(std::move(m));
    fast_methods_.store(std::move(set), std::memory_order_release);
    name_ = "Hybrid(" + std::string(control_.name()) + "+" +
            std::string(fast_.name()) + ")";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] serial::Format wire_format() const override {
    return control_.wire_format();
  }
  [[nodiscard]] bool supports_one_way() const override {
    return control_.supports_one_way();
  }

  Middleware& route_for(std::string_view method) override {
    const auto set = fast_methods_.load(std::memory_order_acquire);
    return set->count(method) != 0 ? fast_ : control_;
  }

  // --- runtime routing control (the AdaptationAspect's knob) -------------
  // The method set is copy-on-write behind an atomic shared_ptr: route_for
  // (the per-call hot path) is one acquire load + a set lookup, identical
  // in cost to the former immutable set, while promote/demote swap in a
  // fresh copy — calls in flight finish against the set they loaded.

  /// Replace the fast-path method set wholesale.
  void set_fast_methods(std::vector<std::string> fast_methods) {
    auto set = std::make_shared<MethodSet>();
    for (auto& m : fast_methods) set->insert(std::move(m));
    fast_methods_.store(std::move(set), std::memory_order_release);
  }
  /// Route `method` onto the fast path from the next call on.
  void promote(std::string_view method) {
    auto set = std::make_shared<MethodSet>(
        *fast_methods_.load(std::memory_order_acquire));
    set->insert(std::string(method));
    fast_methods_.store(std::move(set), std::memory_order_release);
  }
  /// Route `method` back through the control plane from the next call on.
  void demote(std::string_view method) {
    auto set = std::make_shared<MethodSet>(
        *fast_methods_.load(std::memory_order_acquire));
    if (auto it = set->find(method); it != set->end()) set->erase(it);
    fast_methods_.store(std::move(set), std::memory_order_release);
  }
  [[nodiscard]] bool is_fast(std::string_view method) const {
    return fast_methods_.load(std::memory_order_acquire)->count(method) != 0;
  }

  RemoteHandle create(NodeId node, std::string_view class_name,
                      std::vector<std::byte> ctor_args) override {
    return control_.create(node, class_name, std::move(ctor_args));
  }
  std::vector<std::byte> invoke(const RemoteHandle& target,
                                std::string_view method,
                                std::vector<std::byte> args) override {
    return route_for(method).invoke(target, method, std::move(args));
  }
  void invoke_one_way(const RemoteHandle& target, std::string_view method,
                      std::vector<std::byte> args) override {
    route_for(method).invoke_one_way(target, method, std::move(args));
  }
  std::optional<RemoteHandle> lookup(std::string_view name) override {
    return control_.lookup(name);
  }

  /// Aggregated view over BOTH backends. Reporting only the control side
  /// silently undercounts hybrid traffic — the fast path is where the bulk
  /// of the bytes go. Snapshot-based so the aggregation enumerates fields
  /// in exactly one place (MiddlewareStats::snapshot / store) and cannot
  /// drift when a counter is added. Per-backend breakdowns remain
  /// available through control().stats() / fast().stats().
  [[nodiscard]] const MiddlewareStats& stats() const override {
    agg_stats_.store(control_.stats().snapshot() + fast_.stats().snapshot());
    return agg_stats_;
  }
  [[nodiscard]] const CostModel& costs() const override {
    return control_.costs();
  }
  [[nodiscard]] bool wire_transport() const override {
    return control_.wire_transport() || fast_.wire_transport();
  }

  [[nodiscard]] Middleware& control() { return control_; }
  [[nodiscard]] Middleware& fast() { return fast_; }

 private:
  using MethodSet = std::set<std::string, std::less<>>;

  Middleware& control_;
  Middleware& fast_;
  std::atomic<std::shared_ptr<const MethodSet>> fast_methods_;
  std::string name_;
  /// Refreshed on every stats() call from the two backends' live counters.
  mutable MiddlewareStats agg_stats_;
};

}  // namespace apar::cluster
