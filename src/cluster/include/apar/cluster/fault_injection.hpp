#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apar/cluster/middleware.hpp"

namespace apar::cluster {

class Cluster;

/// Fault counters, exposed like MiddlewareStats: one atomic per injected
/// effect, so tests and dashboards can assert on what was actually done.
struct FaultStats {
  std::atomic<std::uint64_t> intercepted{0};  ///< ops a fault decision ran for
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> crashes{0};
  std::atomic<std::uint64_t> delay_us_total{0};
};

/// Fault-injecting decorator over any Middleware — the tested claim that
/// *testing* concerns compose as pluggable modules exactly like the
/// paper's parallelisation concerns: wrap a middleware to inject faults,
/// unwrap (or disarm) it to get the original behaviour back, with the
/// partition/concurrency/distribution aspects none the wiser.
///
/// Every invoke/invoke_one_way consumes one decision index; the decision
/// for index i is a pure function of (seed, i) via common::rng_at, so the
/// schedule of faults is byte-identical across runs of the same seed no
/// matter how threads interleave. The decided schedule is recorded and can
/// be dumped (`schedule_dump()`) for golden comparisons.
///
/// Semantics per operation, in decision order:
///   - crash: on the `crash_on_call`-th operation (1-based), crash the
///     target node first — the forwarded call then fails like any call to
///     a dead node;
///   - drop: a synchronous invoke throws rpc::RpcError (the reply was
///     "lost"); a one-way send is silently swallowed (the message was
///     lost — no completion is ever recorded, exactly like a lossy wire
///     in front of the real middleware);
///   - delay: sleep `delay_us` before forwarding;
///   - duplicate: forward the operation twice (at-least-once delivery);
///     the second reply wins for synchronous calls.
///
/// Wrap CONCRETE middlewares (RMI, MPP), then compose hybrids over the
/// wrappers: route_for() returns this decorator so routed calls cannot
/// bypass injection, which requires inner routing to be the identity.
class FaultInjectingMiddleware final : public Middleware {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double drop_rate = 0.0;
    double delay_rate = 0.0;
    double duplicate_rate = 0.0;
    std::uint64_t max_delay_us = 200;   ///< delays are uniform in [1, max]
    std::uint64_t crash_on_call = 0;    ///< 1-based op index; 0 = never
    Cluster* cluster = nullptr;         ///< required when crash_on_call > 0
  };

  /// One decided (not necessarily distinct from executed) fault action.
  struct Action {
    std::uint64_t index = 0;
    bool crash = false;
    bool drop = false;
    bool duplicate = false;
    std::uint64_t delay_us = 0;
  };

  FaultInjectingMiddleware(Middleware& inner, Options options);

  // --- Middleware interface ----------------------------------------------

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] serial::Format wire_format() const override {
    return inner_.wire_format();
  }
  [[nodiscard]] bool supports_one_way() const override {
    return inner_.supports_one_way();
  }

  /// Creations and lookups pass through unperturbed: the fault surface is
  /// message traffic, and a failed create would abort setup rather than
  /// exercise steady-state resilience.
  RemoteHandle create(NodeId node, std::string_view class_name,
                      std::vector<std::byte> ctor_args) override {
    return inner_.create(node, class_name, std::move(ctor_args));
  }
  std::optional<RemoteHandle> lookup(std::string_view name) override {
    return inner_.lookup(name);
  }

  std::vector<std::byte> invoke(const RemoteHandle& target,
                                std::string_view method,
                                std::vector<std::byte> args) override;
  void invoke_one_way(const RemoteHandle& target, std::string_view method,
                      std::vector<std::byte> args) override;

  [[nodiscard]] const MiddlewareStats& stats() const override {
    return inner_.stats();
  }
  [[nodiscard]] const CostModel& costs() const override {
    return inner_.costs();
  }
  [[nodiscard]] bool wire_transport() const override {
    return inner_.wire_transport();
  }
  Middleware& route_for(std::string_view method) override {
    (void)method;
    return *this;  // keep routed calls inside the fault layer
  }

  // --- fault-injection controls ------------------------------------------

  /// Disarmed, every operation forwards directly: no decision is consumed,
  /// no counter moves — the unplugged configuration.
  void set_armed(bool on) { armed_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] Middleware& inner() { return inner_; }

  /// Canonical text rendering of every decision taken so far, ordered by
  /// decision index: "op N: pass|crash|drop|delay=Kus|dup" — byte-identical
  /// across runs with the same seed and operation count.
  [[nodiscard]] std::string schedule_dump() const;

 private:
  /// Consume the next decision index and decide this operation's faults.
  Action plan();
  void apply_delay(const Action& action);
  void maybe_crash(const Action& action, const RemoteHandle& target);

  Middleware& inner_;
  Options options_;
  std::string name_;
  std::atomic<bool> armed_{true};
  std::atomic<std::uint64_t> next_index_{0};
  FaultStats fault_stats_;

  // Registry mirrors of FaultStats ("faults.injected" counters, labelled
  // {"middleware": name, "kind": ...}); null unless obs::metrics_enabled()
  // at construction.
  std::shared_ptr<obs::Counter> dropped_counter_;
  std::shared_ptr<obs::Counter> delayed_counter_;
  std::shared_ptr<obs::Counter> duplicated_counter_;
  std::shared_ptr<obs::Counter> crash_counter_;

  mutable std::mutex log_mutex_;
  std::vector<Action> log_;
};

}  // namespace apar::cluster
