#pragma once

#include <chrono>
#include <cstddef>
#include <thread>

namespace apar::cluster {

/// Communication cost model for a simulated interconnect.
///
/// The paper's testbed is 7 dual-Xeon machines on Gigabit Ethernet with two
/// middlewares: Java RMI (per-call connection handshake, registry lookups,
/// verbose object serialization, strictly synchronous) and MPP over
/// java.nio (persistent channels, compact frames, one-way sends). On this
/// single-machine reproduction the interconnect is replaced by calibrated
/// delays: threads sleeping on simulated wire time overlap exactly like
/// threads blocked on real network I/O, so relative timing shapes survive
/// even on one CPU core.
///
/// All costs are in microseconds of simulated wall time.
struct CostModel {
  double handshake_us = 0.0;  ///< per-call client-side setup (RMI connect)
  double latency_us = 0.0;    ///< one-way per-message wire latency
  double per_kb_us = 0.0;     ///< per-KiB serialization+wire cost
  double lookup_us = 0.0;     ///< name-server lookup (object binding)

  /// Gigabit-Ethernet-flavoured Java RMI: expensive per call, verbose
  /// payloads, synchronous request/reply.
  static CostModel rmi() {
    CostModel m;
    m.handshake_us = 150.0;
    m.latency_us = 120.0;
    m.per_kb_us = 8.0;
    m.lookup_us = 250.0;
    return m;
  }

  /// MPP over java.nio: persistent channels (no handshake), lower latency,
  /// compact frames.
  static CostModel mpp() {
    CostModel m;
    m.handshake_us = 0.0;
    m.latency_us = 40.0;
    m.per_kb_us = 2.0;
    m.lookup_us = 0.0;
    return m;
  }

  /// Free transport, for functional tests.
  static CostModel loopback() { return CostModel{}; }

  [[nodiscard]] double message_cost_us(std::size_t bytes) const {
    return latency_us + per_kb_us * (static_cast<double>(bytes) / 1024.0);
  }
};

/// Sleep the calling thread for `us` microseconds of simulated time.
/// Zero/negative costs return immediately so loopback stays free.
inline void charge_us(double us) {
  if (us <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(us));
}

}  // namespace apar::cluster
