#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apar/cluster/cost_model.hpp"
#include "apar/cluster/fabric.hpp"
#include "apar/cluster/ids.hpp"
#include "apar/cluster/name_server.hpp"
#include "apar/cluster/node.hpp"
#include "apar/cluster/rpc.hpp"

namespace apar::cluster {

/// The simulated distributed machine: N nodes, a name server, and a shared
/// RPC registry. Substitutes the paper's 7-machine Gigabit cluster; see
/// DESIGN.md ("Substitutions") for why relative timing shapes survive.
/// Implements Fabric so the distribution aspect is oblivious to whether it
/// targets these in-process nodes or real servers over net::TcpFabric.
class Cluster : public Fabric {
 public:
  struct Options {
    std::size_t nodes = 7;           ///< paper: seven dedicated machines
    std::size_t executors_per_node = 4;  ///< dual Xeon with HyperThreading
  };

  Cluster() : Cluster(Options{}) {}
  explicit Cluster(Options options);
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] rpc::Registry& registry() { return registry_; }
  [[nodiscard]] const rpc::Registry& registry() const { return registry_; }
  [[nodiscard]] NameServer& name_server() { return name_server_; }

  void bind_name(std::string name, RemoteHandle handle) override {
    name_server_.bind(std::move(name), handle);
  }

  /// Route a message to its destination node.
  bool route(Message msg);

  // --- one-way completion tracking ---------------------------------------

  /// Called by middleware before a one-way send.
  void one_way_started();
  /// Called by a node executor after a one-way request finished.
  void one_way_finished(std::string error = {});

  /// Outstanding one-way requests (sent but not yet executed).
  [[nodiscard]] std::size_t one_way_pending() const;

  /// Block until every one-way request has executed; rethrows the first
  /// one-way error as rpc::RpcError.
  void drain() override;

  /// Stop all nodes (drains mailboxes first).
  void shutdown();

 private:
  rpc::Registry registry_;
  NameServer name_server_;
  std::vector<std::unique_ptr<Node>> nodes_;

  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;
  std::string first_error_;
};

}  // namespace apar::cluster
