#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "apar/cluster/ids.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/concurrency/sync_registry.hpp"
#include "apar/serial/archive.hpp"

namespace apar::cluster {

/// Transport-agnostic server-side request dispatch: the object table, the
/// per-object monitors and the create/call execution path that used to
/// live inside Node. Both the simulated transport (Node's mailbox loop)
/// and the real one (net::TcpServer's connection handlers) drive the SAME
/// dispatcher, so "what a remote call does once it arrives" cannot drift
/// between the simulation and the wire.
///
/// Calls on one hosted object are serialized by a per-object monitor,
/// mirroring the paper's MPP server loop (Figure 15) which serves each
/// object from a single receive loop. Callers own error transport:
/// create()/call() throw (rpc::RpcError, serial::SerialError, or whatever
/// the hosted method throws) and the transport turns that into an error
/// reply.
class Dispatcher {
 public:
  /// `label` prefixes error messages so callers can tell which host
  /// rejected a request ("node 3", "tcp:127.0.0.1:7777", ...).
  Dispatcher(const rpc::Registry& registry, std::string label);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Construct an instance of `class_name` from marshalled ctor args and
  /// enter it into the object table; returns its id.
  ObjectId create(std::string_view class_name, serial::Reader& ctor_args);

  /// Invoke `method` on hosted object `object`; `args` supplies the
  /// marshalled arguments and the returned buffer carries the
  /// copy-restored arguments followed by the result, encoded in `format`.
  std::vector<std::byte> call(ObjectId object, std::string_view method,
                              serial::Reader& args, serial::Format format);

  /// Number of objects in the table (diagnostic).
  [[nodiscard]] std::size_t object_count() const;

  /// Direct access to a hosted object (test/diagnostic use; the object
  /// stays owned by the dispatcher).
  [[nodiscard]] std::shared_ptr<void> object(ObjectId id) const;

  /// Requests executed (creates + calls) since construction.
  [[nodiscard]] std::uint64_t executed_calls() const {
    return executed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const rpc::Registry& registry() const { return registry_; }
  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  struct Entry {
    std::shared_ptr<void> instance;
    const rpc::ClassEntry* cls = nullptr;
  };

  const rpc::Registry& registry_;
  std::string label_;

  mutable std::mutex table_mutex_;
  std::map<ObjectId, Entry> table_;
  std::atomic<ObjectId> next_object_{1};

  concurrency::SyncRegistry monitors_;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace apar::cluster
