#include "apar/cluster/name_server.hpp"

namespace apar::cluster {

void NameServer::bind(std::string name, RemoteHandle handle) {
  std::lock_guard lock(mutex_);
  bindings_[std::move(name)] = handle;
}

std::optional<RemoteHandle> NameServer::lookup(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

void NameServer::unbind(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = bindings_.find(name);
  if (it != bindings_.end()) bindings_.erase(it);
}

std::size_t NameServer::size() const {
  std::lock_guard lock(mutex_);
  return bindings_.size();
}

std::vector<std::string> NameServer::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(bindings_.size());
  for (const auto& [name, handle] : bindings_) out.push_back(name);
  return out;
}

}  // namespace apar::cluster
