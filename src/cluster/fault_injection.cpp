#include "apar/cluster/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "apar/cluster/cluster.hpp"
#include "apar/common/stress.hpp"

namespace apar::cluster {

FaultInjectingMiddleware::FaultInjectingMiddleware(Middleware& inner,
                                                   Options options)
    : inner_(inner),
      options_(options),
      name_("FaultInjecting(" + std::string(inner.name()) + ")") {
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    const auto counter = [&](const char* kind) {
      return registry.counter("faults.injected",
                              {{"kind", kind}, {"middleware", name_}});
    };
    dropped_counter_ = counter("drop");
    delayed_counter_ = counter("delay");
    duplicated_counter_ = counter("duplicate");
    crash_counter_ = counter("crash");
  }
}

FaultInjectingMiddleware::Action FaultInjectingMiddleware::plan() {
  const std::uint64_t index =
      next_index_.fetch_add(1, std::memory_order_relaxed);
  // Pure function of (seed, index): draws happen in a fixed order so the
  // decided schedule never depends on thread interleaving.
  common::Rng rng = common::rng_at(options_.seed, index);
  const double u_drop = rng.uniform01();
  const double u_delay = rng.uniform01();
  const double u_dup = rng.uniform01();
  const std::uint64_t delay_draw =
      options_.max_delay_us > 0 ? rng.uniform(1, options_.max_delay_us) : 0;

  Action action;
  action.index = index;
  action.crash =
      options_.crash_on_call != 0 && index + 1 == options_.crash_on_call;
  action.drop = u_drop < options_.drop_rate;
  // A dropped message is simply gone: delaying or duplicating it would be
  // meaningless (and would break at-least-once accounting), so drop wins.
  if (!action.drop) {
    if (u_delay < options_.delay_rate) action.delay_us = delay_draw;
    action.duplicate = u_dup < options_.duplicate_rate;
  }

  fault_stats_.intercepted.fetch_add(1, std::memory_order_relaxed);
  if (action.crash) {
    fault_stats_.crashes.fetch_add(1, std::memory_order_relaxed);
    if (crash_counter_) crash_counter_->add(1);
  }
  if (action.drop) {
    fault_stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    if (dropped_counter_) dropped_counter_->add(1);
  }
  if (action.delay_us > 0) {
    fault_stats_.delayed.fetch_add(1, std::memory_order_relaxed);
    fault_stats_.delay_us_total.fetch_add(action.delay_us,
                                          std::memory_order_relaxed);
    if (delayed_counter_) delayed_counter_->add(1);
  }
  if (action.duplicate) {
    fault_stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
    if (duplicated_counter_) duplicated_counter_->add(1);
  }

  {
    std::lock_guard lock(log_mutex_);
    log_.push_back(action);
  }
  return action;
}

void FaultInjectingMiddleware::apply_delay(const Action& action) {
  if (action.delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(action.delay_us));
}

void FaultInjectingMiddleware::maybe_crash(const Action& action,
                                           const RemoteHandle& target) {
  if (!action.crash || options_.cluster == nullptr) return;
  options_.cluster->node(target.node).crash();
}

std::vector<std::byte> FaultInjectingMiddleware::invoke(
    const RemoteHandle& target, std::string_view method,
    std::vector<std::byte> args) {
  if (!armed()) return inner_.invoke(target, method, std::move(args));
  const Action action = plan();
  maybe_crash(action, target);
  if (action.drop)
    throw rpc::RpcError("fault injection dropped reply for '" +
                        std::string(method) + "' (op " +
                        std::to_string(action.index) + ")");
  apply_delay(action);
  if (action.duplicate) inner_.invoke(target, method, args);
  return inner_.invoke(target, method, std::move(args));
}

void FaultInjectingMiddleware::invoke_one_way(const RemoteHandle& target,
                                              std::string_view method,
                                              std::vector<std::byte> args) {
  if (!armed()) {
    inner_.invoke_one_way(target, method, std::move(args));
    return;
  }
  const Action action = plan();
  maybe_crash(action, target);
  if (action.drop) return;  // the message was lost on the wire
  apply_delay(action);
  if (action.duplicate) inner_.invoke_one_way(target, method, args);
  inner_.invoke_one_way(target, method, std::move(args));
}

std::string FaultInjectingMiddleware::schedule_dump() const {
  std::vector<Action> actions;
  {
    std::lock_guard lock(log_mutex_);
    actions = log_;
  }
  std::sort(actions.begin(), actions.end(),
            [](const Action& a, const Action& b) { return a.index < b.index; });
  std::ostringstream out;
  for (const Action& a : actions) {
    out << "op " << a.index << ":";
    bool any = false;
    if (a.crash) { out << " crash"; any = true; }
    if (a.drop) { out << " drop"; any = true; }
    if (a.delay_us > 0) { out << " delay=" << a.delay_us << "us"; any = true; }
    if (a.duplicate) { out << " dup"; any = true; }
    if (!any) out << " pass";
    out << "\n";
  }
  return out.str();
}

}  // namespace apar::cluster
