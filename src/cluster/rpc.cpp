// rpc.hpp is header-only; this anchor forces an instantiation under the
// library's warning flags.
#include "apar/cluster/rpc.hpp"

namespace apar::cluster::rpc {
namespace {
struct Probe {
  int triple(int x) { return 3 * x; }
};
[[maybe_unused]] void instantiation_anchor() {
  Registry reg;
  reg.bind<Probe>("Probe").ctor<>().method<&Probe::triple>("triple");
}
}  // namespace
}  // namespace apar::cluster::rpc
