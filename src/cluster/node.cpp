#include "apar/cluster/node.hpp"

#include <chrono>

#include "apar/cluster/cluster.hpp"
#include "apar/common/log.hpp"
#include "apar/obs/metrics.hpp"

namespace apar::cluster {

Node::Node(Cluster& cluster, NodeId id, const rpc::Registry& registry,
           std::size_t executors)
    : cluster_(cluster),
      id_(id),
      dispatcher_(registry, "node " + std::to_string(id)) {
  if (executors == 0) executors = 1;
  if (obs::metrics_enabled()) {
    mailbox_.enable_metrics("node" + std::to_string(id_) + ".mailbox");
    auto& reg = obs::MetricsRegistry::global();
    const obs::Labels labels{{"node", std::to_string(id_)}};
    handle_us_ = reg.histogram("node.handle_us", labels);
    handled_counter_ = reg.counter("node.handled", labels);
  }
  executors_.reserve(executors);
  for (std::size_t i = 0; i < executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

Node::~Node() { shutdown(); }

bool Node::deliver(Message msg) { return mailbox_.push(std::move(msg)); }

std::size_t Node::object_count() const { return dispatcher_.object_count(); }

std::shared_ptr<void> Node::object(ObjectId id) const {
  return dispatcher_.object(id);
}

void Node::shutdown() {
  if (stopped_.exchange(true)) return;
  mailbox_.close();
  for (auto& t : executors_) t.join();
  executors_.clear();
}

void Node::crash() {
  crashed_.store(true, std::memory_order_relaxed);
  if (stopped_.exchange(true)) return;
  auto dropped = mailbox_.close_now();
  for (auto& t : executors_) t.join();
  executors_.clear();
  // Fail every request that was still queued; silence would deadlock
  // waiting clients and Cluster::drain().
  for (auto& msg : dropped) {
    if (msg.reply_to) {
      Reply reply;
      reply.error = "node " + std::to_string(id_) + " crashed";
      msg.reply_to->set_value(std::move(reply));
    } else {
      cluster_.one_way_finished("node " + std::to_string(id_) + " crashed");
    }
  }
}

void Node::executor_loop() {
  while (auto msg = mailbox_.pop()) {
    charge_us(msg->deliver_cost_us);
    handle(*msg);
  }
}

void Node::handle(Message& msg) {
  std::chrono::steady_clock::time_point started{};
  if (handle_us_) started = std::chrono::steady_clock::now();
  try {
    if (msg.kind == Message::Kind::kCreate) {
      handle_create(msg);
    } else {
      handle_call(msg);
    }
  } catch (const std::exception& e) {
    APAR_DEBUG("cluster") << "node " << id_ << " request failed: "
                          << e.what();
    if (msg.reply_to) {
      Reply reply;
      reply.error = e.what();
      msg.reply_to->set_value(std::move(reply));
    } else {
      cluster_.one_way_finished(e.what());
    }
  }
  if (handle_us_) {
    handle_us_->record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count() /
                       1000.0);
    handled_counter_->add(1);
  }
}

void Node::handle_create(Message& msg) {
  serial::Reader in(msg.payload, msg.format);
  Reply reply;
  reply.object = dispatcher_.create(msg.class_name, in);
  msg.reply_to->set_value(std::move(reply));
}

void Node::handle_call(Message& msg) {
  serial::Reader in(msg.payload, msg.format);
  auto out = dispatcher_.call(msg.object, msg.method, in, msg.format);

  if (msg.reply_to) {
    Reply reply;
    // A node that crashed while this call was executing never gets to send
    // its reply: the caller sees an error, not the (lost) result. The
    // one-way path below stays a success — the side effect did happen —
    // which models exactly the at-most-once ambiguity a real crash causes.
    if (crashed_.load(std::memory_order_relaxed)) {
      reply.error = "node " + std::to_string(id_) + " crashed during call";
    } else {
      reply.payload = std::move(out);
    }
    msg.reply_to->set_value(std::move(reply));
  } else {
    cluster_.one_way_finished();
  }
}

}  // namespace apar::cluster
