#include "apar/cluster/cluster.hpp"

namespace apar::cluster {

Cluster::Cluster(Options options) {
  if (options.nodes == 0) options.nodes = 1;
  nodes_.reserve(options.nodes);
  for (std::size_t i = 0; i < options.nodes; ++i)
    nodes_.push_back(std::make_unique<Node>(*this, static_cast<NodeId>(i),
                                            registry_,
                                            options.executors_per_node));
}

Cluster::~Cluster() { shutdown(); }

bool Cluster::route(Message msg) {
  return nodes_.at(msg.dst)->deliver(std::move(msg));
}

void Cluster::one_way_started() {
  std::lock_guard lock(pending_mutex_);
  ++pending_;
}

void Cluster::one_way_finished(std::string error) {
  std::lock_guard lock(pending_mutex_);
  if (!error.empty() && first_error_.empty()) first_error_ = std::move(error);
  if (--pending_ == 0) pending_cv_.notify_all();
}

std::size_t Cluster::one_way_pending() const {
  std::lock_guard lock(pending_mutex_);
  return pending_;
}

void Cluster::drain() {
  std::unique_lock lock(pending_mutex_);
  pending_cv_.wait(lock, [&] { return pending_ == 0; });
  if (!first_error_.empty()) {
    std::string error;
    error.swap(first_error_);
    lock.unlock();
    throw rpc::RpcError("one-way call failed: " + error);
  }
}

void Cluster::shutdown() {
  for (auto& node : nodes_) node->shutdown();
}

}  // namespace apar::cluster
