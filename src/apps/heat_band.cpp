#include "apar/apps/heat_band.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace apar::apps {

HeatBand::HeatBand(long long rows, long long cols, long long row_offset,
                   long long total_rows, double ns_per_cell)
    : rows_(rows),
      cols_(cols),
      offset_(row_offset),
      total_rows_(total_rows),
      ns_per_cell_(ns_per_cell),
      cells_(static_cast<std::size_t>(rows * cols), 0.0),
      next_(static_cast<std::size_t>(rows * cols), 0.0),
      halo_above_(static_cast<std::size_t>(cols),
                  row_offset == 0 ? 1.0 : 0.0),
      halo_below_(static_cast<std::size_t>(cols), 0.0) {}

double HeatBand::at(long long r, long long c) const {
  // r in [-1, rows_]: -1 is the halo above, rows_ the halo below.
  if (c < 0 || c >= cols_) return 0.0;  // side walls held at 0
  if (r < 0) return halo_above_[static_cast<std::size_t>(c)];
  if (r >= rows_) return halo_below_[static_cast<std::size_t>(c)];
  return cells_[static_cast<std::size_t>(r * cols_ + c)];
}

void HeatBand::step() {
  double max_delta = 0.0;
  for (long long r = 0; r < rows_; ++r) {
    for (long long c = 0; c < cols_; ++c) {
      const double updated = 0.25 * (at(r - 1, c) + at(r + 1, c) +
                                     at(r, c - 1) + at(r, c + 1));
      const std::size_t idx = static_cast<std::size_t>(r * cols_ + c);
      max_delta = std::max(max_delta, std::abs(updated - cells_[idx]));
      next_[idx] = updated;
    }
  }
  cells_.swap(next_);
  residual_ = max_delta;
  if (ns_per_cell_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
        ns_per_cell_ * static_cast<double>(rows_ * cols_)));
  }
}

void HeatBand::run(int iterations) {
  for (int i = 0; i < iterations; ++i) step();
}

std::vector<double> HeatBand::top_row() const {
  return {cells_.begin(), cells_.begin() + static_cast<long long>(cols_)};
}

std::vector<double> HeatBand::bottom_row() const {
  return {cells_.end() - static_cast<long long>(cols_), cells_.end()};
}

void HeatBand::set_halo_above(const std::vector<double>& row) {
  halo_above_ = row;
}

void HeatBand::set_halo_below(const std::vector<double>& row) {
  halo_below_ = row;
}

std::vector<double> HeatBand::snapshot() const { return cells_; }

}  // namespace apar::apps
