#include "apar/apps/word_counter.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>

namespace apar::apps {

WordCounter::WordCounter(long long mask, double ns_per_token)
    : mask_(mask), ns_per_token_(ns_per_token) {}

void WordCounter::filter(std::vector<std::string>& pack) {
  tokens_seen_ += pack.size();
  for (auto& token : pack) {
    if (mask_ & wc::kLowercase) {
      std::transform(token.begin(), token.end(), token.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                     });
    }
    if (mask_ & wc::kStripPunct) {
      token.erase(std::remove_if(token.begin(), token.end(),
                                 [](unsigned char c) {
                                   return std::ispunct(c) != 0;
                                 }),
                  token.end());
    }
  }
  if (mask_ & wc::kDropShort) {
    pack.erase(std::remove_if(pack.begin(), pack.end(),
                              [](const std::string& t) {
                                return t.size() < 3;
                              }),
               pack.end());
  }
  if (ns_per_token_ > 0.0 && !pack.empty()) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
        ns_per_token_ * static_cast<double>(pack.size())));
  }
}

void WordCounter::process(std::vector<std::string>& pack) {
  filter(pack);
  collect(pack);
}

void WordCounter::collect(const std::vector<std::string>& pack) {
  for (const auto& token : pack) ++counts_[token];
  retained_.insert(retained_.end(), pack.begin(), pack.end());
}

std::vector<std::string> WordCounter::take_results() {
  std::vector<std::string> out;
  out.swap(retained_);
  return out;
}

std::map<std::string, long long> WordCounter::counts() const {
  return counts_;
}

}  // namespace apar::apps
