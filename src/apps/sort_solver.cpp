#include "apar/apps/sort_solver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace apar::apps {

SortSolver::SortSolver(long long split_threshold, double ns_per_element)
    : split_threshold_(split_threshold < 1 ? 1 : split_threshold),
      ns_per_element_(ns_per_element) {}

std::vector<long long> SortSolver::solve(
    const std::vector<long long>& problem) {
  std::vector<long long> sorted = problem;
  std::sort(sorted.begin(), sorted.end());
  elements_sorted_ += sorted.size();
  if (ns_per_element_ > 0.0 && !sorted.empty()) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
        ns_per_element_ * static_cast<double>(sorted.size())));
  }
  return sorted;
}

bool SortSolver::should_split(const std::vector<long long>& p) const {
  return static_cast<long long>(p.size()) > split_threshold_;
}

std::vector<std::vector<long long>> SortSolver::split(
    const std::vector<long long>& p) const {
  const auto mid = p.begin() + static_cast<long>(p.size() / 2);
  return {{p.begin(), mid}, {mid, p.end()}};
}

std::vector<long long> SortSolver::merge(
    const std::vector<long long>& a, const std::vector<long long>& b) const {
  std::vector<long long> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(out));
  return out;
}

}  // namespace apar::apps
