#include "apar/apps/signal_stage.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace apar::apps {

SignalStage::SignalStage(long long mask, double ns_per_sample)
    : mask_(mask), ns_per_sample_(ns_per_sample) {}

void SignalStage::filter(std::vector<long long>& pack) {
  for (long long& sample : pack) {
    if (mask_ & signal::kGain) sample *= 3;
    if (mask_ & signal::kClip) sample = std::clamp(sample, -1000LL, 1000LL);
    if (mask_ & signal::kQuantize) sample = (sample / 8) * 8;
  }
  if (ns_per_sample_ > 0.0 && !pack.empty()) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
        ns_per_sample_ * static_cast<double>(pack.size())));
  }
}

void SignalStage::process(std::vector<long long>& pack) {
  filter(pack);
  collect(pack);
}

void SignalStage::collect(const std::vector<long long>& pack) {
  out_.insert(out_.end(), pack.begin(), pack.end());
}

std::vector<long long> SignalStage::take_results() {
  std::vector<long long> out;
  out.swap(out_);
  return out;
}

}  // namespace apar::apps
