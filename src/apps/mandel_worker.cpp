#include "apar/apps/mandel_worker.hpp"

#include <chrono>
#include <thread>

namespace apar::apps {

MandelWorker::MandelWorker(long long width, long long height,
                           long long max_iter, double ns_per_iter)
    : width_(width),
      height_(height),
      max_iter_(max_iter),
      ns_per_iter_(ns_per_iter) {}

int MandelWorker::escape_iterations(double re, double im) const {
  double x = 0.0, y = 0.0;
  int iter = 0;
  while (x * x + y * y <= 4.0 && iter < max_iter_) {
    const double nx = x * x - y * y + re;
    y = 2.0 * x * y + im;
    x = nx;
    ++iter;
  }
  return iter;
}

void MandelWorker::filter(std::vector<long long>& pack) {
  std::uint64_t work = 0;
  for (const long long row : pack) {
    if (row < 0 || row >= height_) continue;
    const double im = -1.2 + 2.4 * static_cast<double>(row) /
                                 static_cast<double>(height_ - 1);
    for (long long col = 0; col < width_; ++col) {
      const double re = -2.0 + 3.0 * static_cast<double>(col) /
                                   static_cast<double>(width_ - 1);
      const int iters = escape_iterations(re, im);
      work += static_cast<std::uint64_t>(iters);
      // Order-independent pixel checksum (commutative sum of mixed terms).
      std::uint64_t pixel = static_cast<std::uint64_t>(row) * 0x9e3779b1u +
                            static_cast<std::uint64_t>(col) * 0x85ebca77u +
                            static_cast<std::uint64_t>(iters);
      pixel *= 0xc2b2ae3d27d4eb4fULL;
      pixel ^= pixel >> 29;
      checksum_ += pixel;
    }
  }
  iterations_ += work;
  if (ns_per_iter_ > 0.0 && work > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
        ns_per_iter_ * static_cast<double>(work)));
  }
}

std::uint64_t MandelWorker::row_checksum(long long row) {
  std::uint64_t sum = 0;
  std::uint64_t work = 0;
  if (row >= 0 && row < height_) {
    const double im = -1.2 + 2.4 * static_cast<double>(row) /
                                 static_cast<double>(height_ - 1);
    for (long long col = 0; col < width_; ++col) {
      const double re = -2.0 + 3.0 * static_cast<double>(col) /
                                   static_cast<double>(width_ - 1);
      const int iters = escape_iterations(re, im);
      work += static_cast<std::uint64_t>(iters);
      std::uint64_t pixel = static_cast<std::uint64_t>(row) * 0x9e3779b1u +
                            static_cast<std::uint64_t>(col) * 0x85ebca77u +
                            static_cast<std::uint64_t>(iters);
      pixel *= 0xc2b2ae3d27d4eb4fULL;
      pixel ^= pixel >> 29;
      sum += pixel;
    }
  }
  if (ns_per_iter_ > 0.0 && work > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::nano>(
        ns_per_iter_ * static_cast<double>(work)));
  }
  return sum;
}

void MandelWorker::process(std::vector<long long>& pack) {
  filter(pack);
  collect(pack);
}

void MandelWorker::collect(const std::vector<long long>& pack) {
  done_.insert(done_.end(), pack.begin(), pack.end());
}

std::vector<long long> MandelWorker::take_results() {
  std::vector<long long> out;
  out.swap(done_);
  return out;
}

}  // namespace apar::apps
