#pragma once

#include <cstdint>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::apps {

/// Core functionality for the divide-and-conquer strategy: a merge-sort
/// solver. `solve` sorts a problem sequentially; the problem algebra
/// (should_split / split / merge) is what the DivideAndConquerAspect uses
/// to re-express the same call as a parallel recursion tree.
class SortSolver {
 public:
  explicit SortSolver(long long split_threshold = 1024,
                      double ns_per_element = 0.0);

  /// Sequentially sort (a copy of) the problem.
  [[nodiscard]] std::vector<long long> solve(
      const std::vector<long long>& problem);

  /// Worth splitting? (strictly larger than the threshold)
  [[nodiscard]] bool should_split(const std::vector<long long>& p) const;

  /// Halve the problem (two sub-problems, order preserved).
  [[nodiscard]] std::vector<std::vector<long long>> split(
      const std::vector<long long>& p) const;

  /// Merge two sorted runs into one sorted run.
  [[nodiscard]] std::vector<long long> merge(
      const std::vector<long long>& a, const std::vector<long long>& b) const;

  [[nodiscard]] std::uint64_t elements_sorted() const {
    return elements_sorted_;
  }

 private:
  long long split_threshold_;
  double ns_per_element_;
  std::uint64_t elements_sorted_ = 0;
};

}  // namespace apar::apps

APAR_CLASS_NAME(apar::apps::SortSolver, "SortSolver");
APAR_METHOD_NAME(&apar::apps::SortSolver::solve, "solve");
APAR_METHOD_NAME(&apar::apps::SortSolver::merge, "merge");

// Declared effect sets: solve accumulates the elements_sorted_ diagnostic
// ("stats"); merge is const over construction-fixed configuration.
APAR_METHOD_READS(&apar::apps::SortSolver::solve, "config");
APAR_METHOD_WRITES(&apar::apps::SortSolver::solve, "stats");
APAR_METHOD_READS(&apar::apps::SortSolver::merge, "config");
