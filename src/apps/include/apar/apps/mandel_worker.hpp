#pragma once

#include <cstdint>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::apps {

/// Core functionality for the farm-imbalance study: renders rows of the
/// Mandelbrot set. Rows crossing the set's interior need orders of
/// magnitude more iterations than edge rows — the classic skewed workload
/// where a dynamic farm beats static round-robin routing.
///
/// Satisfies the Stage concept with E = long long (row indices): process()
/// renders the rows in the pack and retains their indices as results;
/// per-row work is visible through iterations().
class MandelWorker {
 public:
  MandelWorker(long long width, long long height, long long max_iter,
               double ns_per_iter = 0.0);

  /// Render the rows in `pack` (indices into [0, height)); the pack is
  /// left unchanged — rendering has no data dependencies between stages.
  void filter(std::vector<long long>& pack);

  /// Render and retain the row indices as results.
  void process(std::vector<long long>& pack);

  void collect(const std::vector<long long>& pack);
  std::vector<long long> take_results();

  /// Total escape-time iterations performed by this worker — the load
  /// metric benches report per worker.
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

  /// Deterministic checksum over every pixel this worker rendered
  /// (order-independent); lets tests compare parallel against sequential.
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

  /// Render one row (a "tile") and return its pixel checksum without
  /// touching the worker's accumulators: a pure function of the row index
  /// and the construction-fixed geometry, hence declared idempotent — the
  /// memoisable unit of Mandelbrot work. Still pays the work model, so a
  /// cache hit saves real (simulated) compute.
  [[nodiscard]] std::uint64_t row_checksum(long long row);

 private:
  [[nodiscard]] int escape_iterations(double re, double im) const;

  long long width_;
  long long height_;
  long long max_iter_;
  double ns_per_iter_;
  std::uint64_t iterations_ = 0;
  std::uint64_t checksum_ = 0;
  std::vector<long long> done_;
};

}  // namespace apar::apps

APAR_CLASS_NAME(apar::apps::MandelWorker, "MandelWorker");
APAR_METHOD_NAME(&apar::apps::MandelWorker::filter, "filter");
APAR_METHOD_NAME(&apar::apps::MandelWorker::process, "process");
APAR_METHOD_NAME(&apar::apps::MandelWorker::collect, "collect");
APAR_METHOD_NAME(&apar::apps::MandelWorker::take_results, "take_results");
APAR_METHOD_NAME(&apar::apps::MandelWorker::iterations, "iterations");
APAR_METHOD_NAME(&apar::apps::MandelWorker::checksum, "checksum");
APAR_METHOD_NAME(&apar::apps::MandelWorker::row_checksum, "row_checksum");
APAR_METHOD_IDEMPOTENT(&apar::apps::MandelWorker::row_checksum);

// Declared effect sets: "progress" covers the iterations_/checksum_
// accumulators, "results" the retained row indices, "geometry" the
// construction-fixed view parameters (never written — declaring a read of
// an immutable cell documents purity to the race analysis).
APAR_METHOD_READS(&apar::apps::MandelWorker::filter, "geometry");
APAR_METHOD_WRITES(&apar::apps::MandelWorker::filter, "progress");
APAR_METHOD_READS(&apar::apps::MandelWorker::process, "geometry");
APAR_METHOD_WRITES(&apar::apps::MandelWorker::process, "progress");
APAR_METHOD_WRITES(&apar::apps::MandelWorker::process, "results");
APAR_METHOD_WRITES(&apar::apps::MandelWorker::collect, "results");
APAR_METHOD_WRITES(&apar::apps::MandelWorker::take_results, "results");
APAR_METHOD_READS(&apar::apps::MandelWorker::iterations, "progress");
APAR_METHOD_READS(&apar::apps::MandelWorker::checksum, "progress");
APAR_METHOD_READS(&apar::apps::MandelWorker::row_checksum, "geometry");
