#pragma once

#include <cstdint>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::apps {

/// Core functionality for the heartbeat case study: a horizontal band of a
/// 2-D Jacobi heat-diffusion grid.
///
/// The global domain has `total_rows` interior rows; this band owns rows
/// [row_offset, row_offset + rows). Boundary conditions: the global top
/// edge is held at 1.0 (hot plate), every other edge at 0.0. A band on an
/// interior seam exchanges its top/bottom rows with its neighbours through
/// the halo setters — which is exactly what the HeartbeatAspect automates.
///
/// Sequentially (`run(n)`), a single band covering the whole domain is a
/// complete solver; the heartbeat aspect re-expresses the same program as
/// k bands with halo exchanges, without this class knowing.
class HeatBand {
 public:
  HeatBand(long long rows, long long cols, long long row_offset,
           long long total_rows, double ns_per_cell = 0.0);

  /// One Jacobi sweep over the owned rows (using current halos).
  void step();

  /// Sequential driver: `iterations` sweeps.
  void run(int iterations);

  [[nodiscard]] std::vector<double> top_row() const;
  [[nodiscard]] std::vector<double> bottom_row() const;
  void set_halo_above(const std::vector<double>& row);
  void set_halo_below(const std::vector<double>& row);

  /// Max |delta| of the most recent step (0 before any step).
  [[nodiscard]] double residual() const { return residual_; }

  /// Owned data, row-major (testing / visualisation).
  [[nodiscard]] std::vector<double> snapshot() const;

  [[nodiscard]] long long rows() const { return rows_; }
  [[nodiscard]] long long cols() const { return cols_; }
  [[nodiscard]] long long row_offset() const { return offset_; }

 private:
  [[nodiscard]] double at(long long r, long long c) const;

  long long rows_;
  long long cols_;
  long long offset_;
  long long total_rows_;
  double ns_per_cell_;
  std::vector<double> cells_;   // rows_ x cols_
  std::vector<double> next_;    // scratch (shared across calls: not thread safe)
  std::vector<double> halo_above_;
  std::vector<double> halo_below_;
  double residual_ = 0.0;
};

}  // namespace apar::apps

APAR_CLASS_NAME(apar::apps::HeatBand, "HeatBand");
APAR_METHOD_NAME(&apar::apps::HeatBand::step, "step");
APAR_METHOD_NAME(&apar::apps::HeatBand::run, "run");
APAR_METHOD_NAME(&apar::apps::HeatBand::top_row, "top_row");
APAR_METHOD_NAME(&apar::apps::HeatBand::bottom_row, "bottom_row");
APAR_METHOD_NAME(&apar::apps::HeatBand::set_halo_above, "set_halo_above");
APAR_METHOD_NAME(&apar::apps::HeatBand::set_halo_below, "set_halo_below");
APAR_METHOD_NAME(&apar::apps::HeatBand::residual, "residual");
APAR_METHOD_NAME(&apar::apps::HeatBand::snapshot, "snapshot");

// Declared effect sets: "field" is the owned cell grid (and its residual),
// "scratch" the next_ sweep buffer, "halos" the neighbour-row copies. A
// sweep reads the halos and field, writes the field through the scratch
// buffer; the halo setters write only "halos" — which is why the heartbeat
// schedule (exchange, barrier, sweep) is interference-free per phase.
APAR_METHOD_READS(&apar::apps::HeatBand::step, "halos");
APAR_METHOD_WRITES(&apar::apps::HeatBand::step, "field");
APAR_METHOD_WRITES(&apar::apps::HeatBand::step, "scratch");
APAR_METHOD_READS(&apar::apps::HeatBand::run, "halos");
APAR_METHOD_WRITES(&apar::apps::HeatBand::run, "field");
APAR_METHOD_WRITES(&apar::apps::HeatBand::run, "scratch");
APAR_METHOD_READS(&apar::apps::HeatBand::top_row, "field");
APAR_METHOD_READS(&apar::apps::HeatBand::bottom_row, "field");
APAR_METHOD_WRITES(&apar::apps::HeatBand::set_halo_above, "halos");
APAR_METHOD_WRITES(&apar::apps::HeatBand::set_halo_below, "halos");
APAR_METHOD_READS(&apar::apps::HeatBand::residual, "field");
APAR_METHOD_READS(&apar::apps::HeatBand::snapshot, "field");
