#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::apps {

/// Normalisation steps a WordCounter applies, combinable as a bitmask with
/// a fixed application order (lowercase, then strip punctuation, then drop
/// short tokens) — so a pipeline whose stage i applies bit i computes
/// exactly what one stage with the full mask computes.
namespace wc {
inline constexpr long long kLowercase = 1;
inline constexpr long long kStripPunct = 2;
inline constexpr long long kDropShort = 4;  ///< drop tokens shorter than 3
inline constexpr long long kAll = kLowercase | kStripPunct | kDropShort;
}  // namespace wc

/// Core functionality for a text-processing workload: normalises packs of
/// tokens and counts them. A Stage<std::string>, so the very same
/// pipeline/farm aspects that drive the prime sieve drive it — with
/// std::string elements crossing the simulated wire instead of integers.
class WordCounter {
 public:
  explicit WordCounter(long long mask = wc::kAll, double ns_per_token = 0.0);

  /// Apply this stage's normalisations to the pack in place. Tokens
  /// dropped by kDropShort are removed from the pack (like the sieve's
  /// composites).
  void filter(std::vector<std::string>& pack);

  /// Full sequential semantics: normalise with every step, then retain
  /// and count the surviving tokens.
  void process(std::vector<std::string>& pack);

  /// Retain and count already fully-normalised tokens.
  void collect(const std::vector<std::string>& pack);

  /// Move the retained tokens out.
  std::vector<std::string> take_results();

  /// Occurrence counts of every retained token (kept across
  /// take_results; reflects everything this instance counted).
  [[nodiscard]] std::map<std::string, long long> counts() const;

  [[nodiscard]] long long mask() const { return mask_; }
  [[nodiscard]] std::uint64_t tokens_seen() const { return tokens_seen_; }

 private:
  long long mask_;
  double ns_per_token_;
  std::vector<std::string> retained_;
  std::map<std::string, long long> counts_;
  std::uint64_t tokens_seen_ = 0;
};

}  // namespace apar::apps

APAR_CLASS_NAME(apar::apps::WordCounter, "WordCounter");
APAR_METHOD_NAME(&apar::apps::WordCounter::filter, "filter");
APAR_METHOD_NAME(&apar::apps::WordCounter::process, "process");
APAR_METHOD_NAME(&apar::apps::WordCounter::collect, "collect");
APAR_METHOD_NAME(&apar::apps::WordCounter::take_results, "take_results");
APAR_METHOD_NAME(&apar::apps::WordCounter::counts, "counts");

// Declared effect sets: "stats" is the tokens_seen_ counter, "counts" the
// occurrence map, "results" the retained-token store.
APAR_METHOD_WRITES(&apar::apps::WordCounter::filter, "stats");
APAR_METHOD_WRITES(&apar::apps::WordCounter::process, "stats");
APAR_METHOD_WRITES(&apar::apps::WordCounter::process, "counts");
APAR_METHOD_WRITES(&apar::apps::WordCounter::process, "results");
APAR_METHOD_WRITES(&apar::apps::WordCounter::collect, "counts");
APAR_METHOD_WRITES(&apar::apps::WordCounter::collect, "results");
APAR_METHOD_WRITES(&apar::apps::WordCounter::take_results, "results");
APAR_METHOD_READS(&apar::apps::WordCounter::counts, "counts");
