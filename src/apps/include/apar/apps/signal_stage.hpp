#pragma once

#include <cstdint>
#include <vector>

#include "apar/aop/signature.hpp"

namespace apar::apps {

/// Transform kinds a SignalStage can apply, combinable as a bitmask. The
/// order of application is fixed (gain, then clip, then quantize), so a
/// pipeline whose stage i applies bit i computes exactly what one stage
/// with the full mask computes — the property that makes the sequential
/// core and the woven pipeline bit-identical.
namespace signal {
inline constexpr long long kGain = 1;      ///< samples *= 3
inline constexpr long long kClip = 2;      ///< clamp to [-1000, 1000]
inline constexpr long long kQuantize = 4;  ///< round to multiples of 8
inline constexpr long long kAll = kGain | kClip | kQuantize;
}  // namespace signal

/// Core functionality for the pipeline-reuse study: a stage of a signal
/// processing chain over packs of integer samples. The same
/// PipelineAspect that drives the prime sieve drives this class — the
/// paper's claim that "moving from a parallel application to another using
/// the same parallelisation strategy is performed by copying the
/// parallelisation aspects" (§7).
class SignalStage {
 public:
  explicit SignalStage(long long mask, double ns_per_sample = 0.0);

  /// Apply this stage's transforms to the pack in place.
  void filter(std::vector<long long>& pack);

  /// Full sequential semantics: transform and retain.
  void process(std::vector<long long>& pack);

  void collect(const std::vector<long long>& pack);
  std::vector<long long> take_results();

  [[nodiscard]] long long mask() const { return mask_; }

 private:
  long long mask_;
  double ns_per_sample_;
  std::vector<long long> out_;
};

}  // namespace apar::apps

APAR_CLASS_NAME(apar::apps::SignalStage, "SignalStage");
APAR_METHOD_NAME(&apar::apps::SignalStage::filter, "filter");
APAR_METHOD_NAME(&apar::apps::SignalStage::process, "process");
APAR_METHOD_NAME(&apar::apps::SignalStage::collect, "collect");
APAR_METHOD_NAME(&apar::apps::SignalStage::take_results, "take_results");

// Declared effect sets: filter transforms the pack in place and reads only
// the construction-fixed "mask"; the retained output lives in "results".
APAR_METHOD_READS(&apar::apps::SignalStage::filter, "mask");
APAR_METHOD_READS(&apar::apps::SignalStage::process, "mask");
APAR_METHOD_WRITES(&apar::apps::SignalStage::process, "results");
APAR_METHOD_WRITES(&apar::apps::SignalStage::collect, "results");
APAR_METHOD_WRITES(&apar::apps::SignalStage::take_results, "results");
