#pragma once

#include <mutex>

/// Clang thread-safety-analysis attributes, spelled the way the capability
/// model expects, compiled away everywhere else (gcc builds see plain
/// code). A dedicated CI job builds with clang and
/// -Werror=thread-safety-analysis, so a lock_guard-free access to an
/// APAR_GUARDED_BY member is a build break, not a code-review hope.
///
/// Only mutexes used in strict RAII style are annotated: a
/// condition-variable wait needs std::unique_lock<std::mutex>, which the
/// analysis cannot follow through wait()'s unlock/relock, so cv-paired
/// mutexes (ThreadPool::sleep_mutex_, the cache's per-InFlight mutex)
/// deliberately stay plain std::mutex.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define APAR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef APAR_THREAD_ANNOTATION
#define APAR_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define APAR_CAPABILITY(x) APAR_THREAD_ANNOTATION(capability(x))
#define APAR_SCOPED_CAPABILITY APAR_THREAD_ANNOTATION(scoped_lockable)
#define APAR_GUARDED_BY(x) APAR_THREAD_ANNOTATION(guarded_by(x))
#define APAR_PT_GUARDED_BY(x) APAR_THREAD_ANNOTATION(pt_guarded_by(x))
#define APAR_REQUIRES(...) \
  APAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define APAR_ACQUIRE(...) \
  APAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define APAR_RELEASE(...) \
  APAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define APAR_TRY_ACQUIRE(...) \
  APAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define APAR_EXCLUDES(...) APAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define APAR_NO_THREAD_SAFETY_ANALYSIS \
  APAR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace apar::common {

/// std::mutex with the capability annotation the analysis needs (libstdc++
/// ships std::mutex unannotated, so guarding members with it teaches clang
/// nothing). Drop-in for lock_guard-style use; identical codegen.
class APAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() APAR_ACQUIRE() { mu_.lock(); }
  void unlock() APAR_RELEASE() { mu_.unlock(); }
  bool try_lock() APAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, annotated as a scoped capability so clang tracks
/// the critical section. The std::lock_guard analogue for annotated code.
class APAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) APAR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() APAR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace apar::common
