#pragma once

#include <chrono>
#include <cstdint>

namespace apar::common {

/// Monotonic wall-clock stopwatch.
///
/// All benchmark harnesses in this project time with Stopwatch so that the
/// measurement policy (steady_clock, double seconds) is defined in one place.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch at the current instant.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Microseconds elapsed since construction or the last reset().
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  clock::time_point start_;
};

}  // namespace apar::common
