#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apar::common {

/// Minimal command-line / environment option parser shared by the example
/// binaries and the bench harnesses.
///
/// Recognised syntax: `--key value`, `--key=value`, bare `--flag` (value
/// "true"), and positional arguments. Lookups fall back to the environment
/// variable `APAR_<KEY>` (upper-cased, '-' → '_') so bench sweeps can be
/// re-parameterised without editing code.
class Config {
 public:
  Config() = default;
  Config(int argc, const char* const* argv);

  /// True if the key was given on the command line or via the environment.
  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view fallback = "") const;
  [[nodiscard]] long long get_int(std::string_view key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Inject/override a value programmatically (tests).
  void set(std::string key, std::string value);

 private:
  [[nodiscard]] std::optional<std::string> lookup(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace apar::common
