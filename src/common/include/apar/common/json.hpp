#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace apar::common {

/// Escape a string for embedding in a JSON string literal (quotes not
/// included). Control characters become \u00XX.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as a JSON number: integral values print without a
/// fractional part, everything else with enough digits to round-trip
/// reasonably ("%.6g").
inline std::string json_number(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

}  // namespace apar::common
