#pragma once

#include <cstdint>
#include <limits>

namespace apar::common {

/// Deterministic, seedable xoshiro256** generator.
///
/// Workload generators must be reproducible across runs and across the
/// test/bench split, so we carry our own PRNG rather than relying on
/// implementation-defined std::default_random_engine behaviour.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    return lo + (*this)() % span;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace apar::common
