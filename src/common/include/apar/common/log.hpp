#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace apar::common {

/// Log severity, lowest to highest.
enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum severity; messages below it are dropped before
/// formatting. Defaults to kWarn so library internals stay quiet in benches.
/// The APAR_LOG_LEVEL environment variable, when set, is applied at first
/// use — but an explicit set_log_level() always wins over the environment.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; unknown → kWarn.
LogLevel parse_log_level(std::string_view name);

namespace detail {
void log_sink(LogLevel level, std::string_view component, std::string_view msg);
/// Re-read APAR_LOG_LEVEL and apply it if set (test hook; the normal path
/// reads the environment once). Returns true if the variable was set.
bool reload_log_level_from_env();
}

/// Streaming log statement builder; flushes to the sink on destruction.
///
///   LogLine(LogLevel::kInfo, "cluster") << "node " << id << " up";
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(level >= log_level()) {}

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  ~LogLine() {
    if (enabled_) detail::log_sink(level_, component_, os_.str());
  }

  template <class T>
  LogLine& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream os_;
};

#define APAR_LOG(level, component) ::apar::common::LogLine(level, component)
#define APAR_TRACE(component) APAR_LOG(::apar::common::LogLevel::kTrace, component)
#define APAR_DEBUG(component) APAR_LOG(::apar::common::LogLevel::kDebug, component)
#define APAR_INFO(component) APAR_LOG(::apar::common::LogLevel::kInfo, component)
#define APAR_WARN(component) APAR_LOG(::apar::common::LogLevel::kWarn, component)
#define APAR_ERROR(component) APAR_LOG(::apar::common::LogLevel::kError, component)

}  // namespace apar::common
