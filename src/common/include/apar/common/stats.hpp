#pragma once

#include <cstddef>
#include <vector>

namespace apar::common {

/// Summary statistics over a sample of measurements.
///
/// The paper reports the *median of five executions*; every figure harness in
/// bench/ funnels its repetitions through this type so the aggregation policy
/// is identical everywhere.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

/// Compute summary statistics. An empty sample yields a zeroed Summary.
Summary summarize(std::vector<double> sample);

/// Median of a sample (by copy; the input is not modified by the caller's
/// view). An empty sample yields 0.
double median(std::vector<double> sample);

/// Percentile in [0,100] using linear interpolation between closest ranks.
double percentile(std::vector<double> sample, double pct);

/// Online mean/variance accumulator (Welford). Useful when a bench loop does
/// not want to keep every observation.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace apar::common
