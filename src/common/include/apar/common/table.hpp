#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace apar::common {

/// Plain-text table printer used by the figure/table reproduction benches to
/// emit the same rows/series the paper reports.
///
/// Columns are sized to the widest cell; numbers should be pre-formatted by
/// the caller (see fmt_seconds / fmt_ratio below for the house style).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row. Rows shorter than the header are padded with empty
  /// cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const;

  /// Render with aligned columns, a header underline, and `indent` leading
  /// spaces on every line.
  [[nodiscard]] std::string str(int indent = 0) const;

  /// Render as comma-separated values (no alignment), e.g. for plotting.
  [[nodiscard]] std::string csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with 4 significant digits, e.g. "3.142".
std::string fmt_seconds(double s);

/// Format milliseconds, e.g. "12.34 ms".
std::string fmt_millis(double ms);

/// Format a ratio as a percentage delta, e.g. "+4.2%".
std::string fmt_ratio(double ratio);

/// Format a count with thousands separators, e.g. "10,000,000".
std::string fmt_count(long long n);

}  // namespace apar::common
