#pragma once

#include <cstdint>
#include <cstdlib>

#include "apar/common/rng.hpp"

namespace apar::common {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The generator for the `index`-th decision of a seeded plan.
///
/// Fault-injection and schedule-perturbation decisions must be a pure
/// function of (seed, decision index) — NOT of the order threads happen to
/// reach the decision point — so that a printed seed reproduces the exact
/// fault schedule even though thread interleavings differ between runs.
inline Rng rng_at(std::uint64_t seed, std::uint64_t index) {
  return Rng(mix64(seed ^ mix64(index)));
}

/// Seed for a stress run: the APAR_STRESS_SEED environment variable when
/// set (and parseable as a decimal u64), otherwise `fallback`. Stress
/// tests print the seed they used; re-running with APAR_STRESS_SEED=<seed>
/// reproduces the exact fault/perturbation schedule.
inline std::uint64_t stress_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("APAR_STRESS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

}  // namespace apar::common
