#include "apar/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace apar::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {
void log_sink(LogLevel level, std::string_view component,
              std::string_view msg) {
  std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace apar::common
