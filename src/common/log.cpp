#include "apar/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <sstream>
#include <thread>

namespace apar::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  // Consume the env read so a later first log statement cannot override an
  // explicit programmatic choice with APAR_LOG_LEVEL.
  std::call_once(g_env_once, [] {});
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  std::call_once(g_env_once, [] { detail::reload_log_level_from_env(); });
  return g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

bool reload_log_level_from_env() {
  const char* env = std::getenv("APAR_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return false;
  g_level.store(parse_log_level(env), std::memory_order_relaxed);
  return true;
}

void log_sink(LogLevel level, std::string_view component,
              std::string_view msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now.time_since_epoch())
          .count() %
      1000000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char stamp[16];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm);
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s.%06lld] [%s] [t:%s] %.*s: %.*s\n", stamp,
               static_cast<long long>(micros), level_name(level),
               tid.str().c_str(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

}  // namespace apar::common
