#include "apar/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace apar::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::size_t Table::columns() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  return cols;
}

std::string Table::str(int indent) const {
  const std::size_t cols = columns();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 < cols) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(cols);
  for (std::size_t c = 0; c < cols; ++c)
    rule.emplace_back(width[c], '-');
  emit(rule);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

std::string fmt_seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string fmt_millis(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f ms", ms);
  return buf;
}

std::string fmt_ratio(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

std::string fmt_count(long long n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  if (n < 0) out.insert(out.begin(), '-');
  return out;
}

}  // namespace apar::common
