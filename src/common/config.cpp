#include "apar/common/config.hpp"

#include <cctype>
#include <cstdlib>

namespace apar::common {

Config::Config(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

std::optional<std::string> Config::lookup(std::string_view key) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  std::string env = "APAR_";
  for (char c : key)
    env += c == '-' ? '_' : static_cast<char>(std::toupper(
                                static_cast<unsigned char>(c)));
  if (const char* v = std::getenv(env.c_str())) return std::string(v);
  return std::nullopt;
}

bool Config::has(std::string_view key) const {
  return lookup(key).has_value();
}

std::string Config::get(std::string_view key, std::string_view fallback) const {
  if (auto v = lookup(key)) return *v;
  return std::string(fallback);
}

long long Config::get_int(std::string_view key, long long fallback) const {
  if (auto v = lookup(key)) {
    char* end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 10);
    if (end != v->c_str()) return parsed;
  }
  return fallback;
}

double Config::get_double(std::string_view key, double fallback) const {
  if (auto v = lookup(key)) {
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end != v->c_str()) return parsed;
  }
  return fallback;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  if (auto v = lookup(key)) {
    return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
  }
  return fallback;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

}  // namespace apar::common
