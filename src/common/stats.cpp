#include "apar/common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace apar::common {

double median(std::vector<double> sample) {
  if (sample.empty()) return 0.0;
  const std::size_t mid = sample.size() / 2;
  std::nth_element(sample.begin(), sample.begin() + mid, sample.end());
  const double hi = sample[mid];
  if (sample.size() % 2 == 1) return hi;
  const double lo = *std::max_element(sample.begin(), sample.begin() + mid);
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> sample, double pct) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  if (pct <= 0.0) return sample.front();
  if (pct >= 100.0) return sample.back();
  const double rank = pct / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  if (sample.empty()) return s;
  s.count = sample.size();
  s.median = median(sample);
  Accumulator acc;
  for (double x : sample) acc.add(x);
  s.min = acc.min();
  s.max = acc.max();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  return s;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace apar::common
