#include "apar/adapt/controller.hpp"

#include <algorithm>

namespace apar::adapt {

std::string_view decision_name(Decision d) {
  switch (d) {
    case Decision::kNone: return "none";
    case Decision::kGrowWorkers: return "grow-workers";
    case Decision::kShrinkWorkers: return "shrink-workers";
    case Decision::kRevertGrow: return "revert-grow";
    case Decision::kRevertShrink: return "revert-shrink";
    case Decision::kGrainCoarsen: return "grain-coarsen";
    case Decision::kGrainRefine: return "grain-refine";
    case Decision::kFeederDeepen: return "feeder-deepen";
    case Decision::kFeederShallow: return "feeder-shallow";
    case Decision::kPromoteFast: return "promote-fast";
    case Decision::kDemoteFast: return "demote-fast";
  }
  return "unknown";
}

AdaptationController::AdaptationController()
    : AdaptationController(Config{}) {}

AdaptationController::AdaptationController(Config config,
                                           obs::MetricsRegistry& registry)
    : cfg_(std::move(config)), registry_(&registry) {
  workers_gauge_ = registry_->gauge("adapt.workers");
  grain_gauge_ = registry_->gauge("adapt.grain");
  feeder_gauge_ = registry_->gauge("adapt.feeder_depth");
  routing_gauge_ = registry_->gauge("adapt.routing");
  last_decision_gauge_ = registry_->gauge("adapt.last_decision");
  ticks_counter_ = registry_->counter("adapt.ticks");
  decisions_counter_ = registry_->counter("adapt.decisions");
  reverts_counter_ = registry_->counter("adapt.reverts");
}

AdaptationController::~AdaptationController() { stop(); }

void AdaptationController::set_workers_knob(Knob knob) {
  workers_ = std::move(knob);
  publish_gauges();
}
void AdaptationController::set_grain_knob(Knob knob) {
  grain_ = std::move(knob);
  publish_gauges();
}
void AdaptationController::set_feeder_knob(Knob knob) {
  feeder_ = std::move(knob);
  publish_gauges();
}
void AdaptationController::set_routing_knob(Knob knob) {
  routing_ = std::move(knob);
  publish_gauges();
}

Signals AdaptationController::sample() {
  window_.advance(*registry_);
  Signals s;
  s.valid = window_.ready();
  if (!s.valid) return s;
  s.interval_s = window_.seconds();
  s.throughput = window_.counter_rate(cfg_.tasks_metric);
  s.queue_wait_p95_us = window_.histogram_window(cfg_.queue_wait_metric).p95;
  s.run_mean_us = window_.histogram_window(cfg_.run_metric).mean;
  s.steal_rate = window_.counter_rate(cfg_.steals_metric);
  s.overflow_rate = window_.counter_rate(cfg_.overflow_metric);
  s.rtt_p95_us = window_.histogram_window(cfg_.rtt_metric).p95;
  return s;
}

void AdaptationController::decide(Decision d, std::vector<Decision>& out) {
  out.push_back(d);
  decision_count_.fetch_add(1, std::memory_order_relaxed);
  decisions_counter_->add(1);
  last_decision_.store(static_cast<int>(d), std::memory_order_relaxed);
  last_decision_gauge_->set(static_cast<int>(d));
}

void AdaptationController::control_workers(const Signals& s,
                                           std::vector<Decision>& out) {
  if (!workers_.valid()) return;
  if (cooldown_ > 0) {
    // Hold still while the last actuation settles; on expiry run the
    // hill-climb verification against the pre-actuation baseline.
    if (--cooldown_ == 0 && pending_verify_ != Decision::kNone) {
      const double gain =
          baseline_throughput_ > 0.0
              ? s.throughput / baseline_throughput_ - 1.0
              : 0.0;
      if (pending_verify_ == Decision::kGrowWorkers && gain < cfg_.min_gain) {
        // The extra worker did not pay for itself (e.g. CPU-bound phase on
        // a saturated host, where queue pressure lies): take it back and
        // lock out growth for a while.
        workers_.set(workers_.value() - 1);
        grow_backoff_ = cfg_.backoff_ticks;
        revert_count_.fetch_add(1, std::memory_order_relaxed);
        reverts_counter_->add(1);
        decide(Decision::kRevertGrow, out);
        cooldown_ = cfg_.cooldown_ticks;
      } else if (pending_verify_ == Decision::kShrinkWorkers &&
                 gain < -cfg_.max_loss) {
        workers_.set(workers_.value() + 1);
        shrink_backoff_ = cfg_.backoff_ticks;
        revert_count_.fetch_add(1, std::memory_order_relaxed);
        reverts_counter_->add(1);
        decide(Decision::kRevertShrink, out);
        cooldown_ = cfg_.cooldown_ticks;
      }
      pending_verify_ = Decision::kNone;
    }
    return;
  }
  if (grow_backoff_ > 0) --grow_backoff_;
  if (shrink_backoff_ > 0) --shrink_backoff_;

  const bool pressure = s.queue_wait_p95_us > cfg_.queue_wait_grow_us;
  const bool idle = s.queue_wait_p95_us < cfg_.queue_wait_shrink_us;
  idle_streak_ = idle ? idle_streak_ + 1 : 0;

  if (pressure && grow_backoff_ == 0 && workers_.value() < workers_.max()) {
    // Additive increase: exactly one worker per decision.
    baseline_throughput_ = s.throughput;
    workers_.set(workers_.value() + 1);
    pending_verify_ = Decision::kGrowWorkers;
    cooldown_ = cfg_.cooldown_ticks;
    stable_streak_ = 0;
    decide(Decision::kGrowWorkers, out);
    return;
  }
  const bool probe_due = stable_streak_ >= cfg_.probe_ticks;
  if ((idle_streak_ >= cfg_.shrink_patience || probe_due) &&
      shrink_backoff_ == 0 && workers_.value() > workers_.min()) {
    // Threshold-gated decrease: either a sustained idle band, or an
    // exploratory probe after a long stable stretch (the saturated-host
    // case, where queue waits never look idle but surplus workers only
    // add contention). Verification below reverts a probe that loses
    // throughput.
    baseline_throughput_ = s.throughput;
    workers_.set(workers_.value() - 1);
    pending_verify_ = Decision::kShrinkWorkers;
    cooldown_ = cfg_.cooldown_ticks;
    idle_streak_ = 0;
    stable_streak_ = 0;
    decide(Decision::kShrinkWorkers, out);
    return;
  }
  ++stable_streak_;
}

void AdaptationController::control_grain(const Signals& s,
                                         std::vector<Decision>& out) {
  if (!grain_.valid()) return;
  if (grain_cooldown_ > 0) {
    --grain_cooldown_;
    return;
  }
  if (s.run_mean_us <= 0.0) return;
  if (s.run_mean_us < cfg_.grain_low_us && grain_.value() < grain_.max()) {
    // Task bodies are so short the envelope dominates: coarsen
    // multiplicatively (halving the number of envelopes per wave).
    grain_.set(grain_.value() * 2);
    grain_cooldown_ = cfg_.cooldown_ticks;
    decide(Decision::kGrainCoarsen, out);
  } else if (s.run_mean_us > cfg_.grain_high_us &&
             grain_.value() > grain_.min()) {
    grain_.set(std::max(grain_.min(), grain_.value() / 2));
    grain_cooldown_ = cfg_.cooldown_ticks;
    decide(Decision::kGrainRefine, out);
  }
}

void AdaptationController::control_feeder(const Signals& s,
                                          std::vector<Decision>& out) {
  if (!feeder_.valid()) return;
  if (feeder_cooldown_ > 0) {
    --feeder_cooldown_;
    return;
  }
  if (s.queue_wait_p95_us > cfg_.feeder_deep_us &&
      feeder_.value() < feeder_.max()) {
    feeder_.set(feeder_.value() * 2);
    feeder_cooldown_ = cfg_.cooldown_ticks;
    decide(Decision::kFeederDeepen, out);
  } else if (s.queue_wait_p95_us < cfg_.feeder_shallow_us &&
             feeder_.value() > feeder_.min()) {
    feeder_.set(std::max(feeder_.min(), feeder_.value() / 2));
    feeder_cooldown_ = cfg_.cooldown_ticks;
    decide(Decision::kFeederShallow, out);
  }
}

void AdaptationController::control_routing(const Signals& s,
                                           std::vector<Decision>& out) {
  if (!routing_.valid()) return;
  if (routing_cooldown_ > 0) {
    --routing_cooldown_;
    return;
  }
  if (s.rtt_p95_us <= 0.0) return;
  // Hysteresis band: promote above rtt_promote_us, demote only below the
  // (lower) rtt_demote_us, so RTT noise inside the band never flaps the
  // plane selection.
  if (s.rtt_p95_us > cfg_.rtt_promote_us && routing_.value() == 0) {
    routing_.set(1);
    routing_cooldown_ = cfg_.cooldown_ticks;
    decide(Decision::kPromoteFast, out);
  } else if (s.rtt_p95_us < cfg_.rtt_demote_us && routing_.value() == 1) {
    routing_.set(0);
    routing_cooldown_ = cfg_.cooldown_ticks;
    decide(Decision::kDemoteFast, out);
  }
}

std::vector<Decision> AdaptationController::tick(const Signals& s) {
  std::vector<Decision> out;
  tick_count_.fetch_add(1, std::memory_order_relaxed);
  ticks_counter_->add(1);
  if (!s.valid) return out;
  control_workers(s, out);
  control_grain(s, out);
  control_feeder(s, out);
  control_routing(s, out);
  publish_gauges();
  return out;
}

void AdaptationController::publish_gauges() {
  if (workers_.valid()) workers_gauge_->set(workers_.value());
  if (grain_.valid()) grain_gauge_->set(grain_.value());
  if (feeder_.valid()) feeder_gauge_->set(feeder_.value());
  if (routing_.valid()) routing_gauge_->set(routing_.value());
}

void AdaptationController::loop() {
  while (true) {
    {
      std::unique_lock lock(loop_mutex_);
      loop_cv_.wait_for(lock, cfg_.interval, [&] { return stop_requested_; });
      if (stop_requested_) return;
    }
    tick(sample());
  }
}

void AdaptationController::start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lock(loop_mutex_);
    stop_requested_ = false;
  }
  // Prime the window so the first in-loop tick already has a delta.
  window_.advance(*registry_);
  publish_gauges();
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
}

void AdaptationController::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lock(loop_mutex_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);
}

}  // namespace apar::adapt
