#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

namespace apar::adapt {

/// One runtime-tunable degree of parallelism: a named integer with hard
/// bounds and an apply callback that pushes a new value into the live
/// system (ThreadPool::resize, a farm's pack size, a feeder's batch
/// depth, a middleware routing plane). The controller owns the value; the
/// callback runs synchronously on the controller's thread, so actuators
/// must be safe to call from a non-worker thread (resize() requires
/// exactly that).
class Knob {
 public:
  using Apply = std::function<void(std::int64_t)>;

  Knob() = default;
  Knob(std::string name, std::int64_t min, std::int64_t max,
       std::int64_t initial, Apply apply)
      : name_(std::move(name)),
        min_(min),
        max_(std::max(min, max)),
        value_(std::clamp(initial, min_, max_)),
        apply_(std::move(apply)) {}

  [[nodiscard]] bool valid() const { return static_cast<bool>(apply_); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] std::int64_t value() const { return value_; }

  /// Clamp to [min, max], actuate if the clamped value differs from the
  /// current one, and return the value now in force.
  std::int64_t set(std::int64_t v) {
    v = std::clamp(v, min_, max_);
    if (v != value_) {
      value_ = v;
      apply_(v);
    }
    return value_;
  }

 private:
  std::string name_;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t value_ = 0;
  Apply apply_;
};

}  // namespace apar::adapt
