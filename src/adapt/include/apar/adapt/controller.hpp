#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "apar/adapt/knob.hpp"
#include "apar/aop/signature.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/obs/snapshot_window.hpp"

namespace apar::adapt {

/// One windowed reading of the metrics plane — everything tick() is
/// allowed to see. sample() fills it from a SnapshotWindow over the
/// registry; tests construct it directly, which makes the whole decision
/// logic deterministic (tick() touches no clock and no global).
struct Signals {
  bool valid = false;        ///< false until two snapshots exist
  double interval_s = 0.0;   ///< window length
  double throughput = 0.0;   ///< pool tasks completed per second
  double queue_wait_p95_us = 0.0;  ///< submit→start gap, windowed p95
  double run_mean_us = 0.0;        ///< task body wall time, windowed mean
  double steal_rate = 0.0;         ///< successful steals per second
  double overflow_rate = 0.0;      ///< deque overflows per second
  double rtt_p95_us = 0.0;         ///< network RTT, windowed p95 (0 = none)
};

/// Everything the controller decided on one tick, for gauges/logs/tests.
enum class Decision : int {
  kNone = 0,
  kGrowWorkers = 1,
  kShrinkWorkers = 2,
  kRevertGrow = 3,     ///< hill-climb verification failed a grow
  kRevertShrink = 4,   ///< hill-climb verification failed a shrink
  kGrainCoarsen = 5,
  kGrainRefine = 6,
  kFeederDeepen = 7,
  kFeederShallow = 8,
  kPromoteFast = 9,    ///< hybrid middleware: route onto the fast path
  kDemoteFast = 10,
};

[[nodiscard]] std::string_view decision_name(Decision d);

/// Hysteresis-damped autonomic controller over the live metrics plane,
/// after Aldinucci/Danelutto/Kilpatrick's behavioural-skeleton managers:
/// observe (windowed registry deltas) → decide (banded thresholds +
/// hill-climb verification) → actuate (knobs). Damping comes from three
/// mechanisms, each of which independently prevents oscillation:
///
///  * additive increase — a grow moves exactly one worker per decision;
///  * threshold-gated decrease — a shrink needs `shrink_patience`
///    consecutive idle windows, or an exploratory probe after a long
///    stable period, never a single noisy reading;
///  * cooldown + verification — after any worker actuation the controller
///    holds still for `cooldown_ticks` windows, then compares throughput
///    against the pre-actuation baseline: a grow that did not pay
///    (`min_gain`) or a shrink that cost too much (`max_loss`) is
///    reverted, and that direction is locked out for `backoff_ticks`.
///
/// The hill-climb check is what keeps the controller honest on hosts
/// where queue pressure alone points the wrong way (an oversubscribed
/// CPU-bound phase shows long queue waits that more workers only make
/// worse): the pressure heuristic proposes, measured throughput disposes.
class AdaptationController {
 public:
  struct Config {
    std::chrono::milliseconds interval{200};  ///< control-loop period
    int cooldown_ticks = 2;     ///< hold-still windows after actuating
    int backoff_ticks = 8;      ///< direction lockout after a revert
    int shrink_patience = 3;    ///< idle windows before a shrink
    int probe_ticks = 10;       ///< stable windows before a shrink probe
    double queue_wait_grow_us = 500.0;   ///< pressure band: grow above
    double queue_wait_shrink_us = 50.0;  ///< idle band: shrink below
    double min_gain = 0.05;  ///< a grow must buy ≥5% throughput to stick
    double max_loss = 0.10;  ///< a shrink may cost ≤10% before reverting
    double grain_low_us = 40.0;     ///< task bodies below: coarsen grain
    double grain_high_us = 2000.0;  ///< task bodies above: refine grain
    double feeder_deep_us = 500.0;   ///< queue-wait p95: deepen feeder
    double feeder_shallow_us = 50.0;
    double rtt_promote_us = 2000.0;  ///< RTT p95: promote to fast path
    double rtt_demote_us = 500.0;    ///< hysteresis gap below promote
    std::string tasks_metric = "threadpool.tasks";
    std::string queue_wait_metric = "threadpool.queue_wait";
    std::string run_metric = "threadpool.run_us";
    std::string steals_metric = "threadpool.steals";
    std::string overflow_metric = "threadpool.overflow";
    std::string rtt_metric = "net.rtt_us";
  };

  AdaptationController();  ///< default Config over the global registry
  explicit AdaptationController(
      Config config,
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global());
  ~AdaptationController();

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  /// Wire the actuators. Knobs may be set before or between runs, not
  /// while the loop thread is running.
  void set_workers_knob(Knob knob);
  void set_grain_knob(Knob knob);
  void set_feeder_knob(Knob knob);
  /// Binary plane selector: 0 = control plane, 1 = fast path.
  void set_routing_knob(Knob knob);

  /// Observe: windowed deltas of the registry since the previous sample.
  [[nodiscard]] Signals sample();
  /// Decide + actuate from one reading. Deterministic: no clock, no
  /// registry access — tests drive it with synthetic Signals. Returns the
  /// decisions taken this tick (empty = hold).
  std::vector<Decision> tick(const Signals& signals);

  /// Run sample()+tick() every cfg.interval on a dedicated thread.
  void start();
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t ticks() const {
    return tick_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t decisions() const {
    return decision_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reverts() const {
    return revert_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Decision last_decision() const {
    return static_cast<Decision>(last_decision_.load(std::memory_order_relaxed));
  }
  /// Current knob values (0 when the knob is unwired).
  [[nodiscard]] std::int64_t workers() const { return workers_.value(); }
  [[nodiscard]] std::int64_t grain() const { return grain_.value(); }
  [[nodiscard]] std::int64_t feeder_depth() const { return feeder_.value(); }
  [[nodiscard]] std::int64_t routing() const { return routing_.value(); }

 private:
  void decide(Decision d, std::vector<Decision>& out);
  void control_workers(const Signals& s, std::vector<Decision>& out);
  void control_grain(const Signals& s, std::vector<Decision>& out);
  void control_feeder(const Signals& s, std::vector<Decision>& out);
  void control_routing(const Signals& s, std::vector<Decision>& out);
  void publish_gauges();
  void loop();

  Config cfg_;
  obs::MetricsRegistry* registry_;
  obs::SnapshotWindow window_;

  Knob workers_;
  Knob grain_;
  Knob feeder_;
  Knob routing_;

  // Worker-knob controller state (single-threaded: loop thread only).
  int cooldown_ = 0;
  int grow_backoff_ = 0;
  int shrink_backoff_ = 0;
  int idle_streak_ = 0;
  int stable_streak_ = 0;
  Decision pending_verify_ = Decision::kNone;
  double baseline_throughput_ = 0.0;
  int grain_cooldown_ = 0;
  int feeder_cooldown_ = 0;
  int routing_cooldown_ = 0;

  std::atomic<std::uint64_t> tick_count_{0};
  std::atomic<std::uint64_t> decision_count_{0};
  std::atomic<std::uint64_t> revert_count_{0};
  std::atomic<int> last_decision_{0};

  // adapt.* gauges/counters: the controller's own observability (rendered
  // by tools/apar_top.py over the kTelemetry op). Registered at
  // construction regardless of the APAR_METRICS gate — wiring a controller
  // is already the opt-in, mirroring ProfilingAspect.
  std::shared_ptr<obs::Gauge> workers_gauge_;
  std::shared_ptr<obs::Gauge> grain_gauge_;
  std::shared_ptr<obs::Gauge> feeder_gauge_;
  std::shared_ptr<obs::Gauge> routing_gauge_;
  std::shared_ptr<obs::Gauge> last_decision_gauge_;
  std::shared_ptr<obs::Counter> ticks_counter_;
  std::shared_ptr<obs::Counter> decisions_counter_;
  std::shared_ptr<obs::Counter> reverts_counter_;

  std::thread loop_thread_;
  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace apar::adapt

// Analyzer self-description: the control loop's tick is a join point the
// effects pass can reason about — it READS the metrics plane (its Signals
// all derive from registry snapshots) and writes nothing the woven
// application declares. Registered here, where every adaptation user
// already includes the controller.
APAR_CLASS_NAME(apar::adapt::AdaptationController, "AdaptationController");
APAR_METHOD_NAME(&apar::adapt::AdaptationController::tick, "tick");
APAR_METHOD_READS(&apar::adapt::AdaptationController::tick, "metrics_plane");
