#pragma once

#include <string>
#include <utility>
#include <vector>

#include "apar/adapt/controller.hpp"
#include "apar/aop/aspect.hpp"

namespace apar::adapt {

/// The autonomic-management concern as a pluggable aspect for class T —
/// sibling of Profiling (observability), Trace (debugging) and Chaos
/// (testing): plug it into a woven Context and a low-frequency control
/// loop starts self-tuning the parallelism behind the advised join points
/// from live MetricsRegistry signals; unplug it and the loop thread stops,
/// the knobs freeze at their last values, and not a single instruction
/// remains on the call path (on_detach is the zero-residue guarantee the
/// fig16 overhead run checks).
///
/// The advice this aspect registers is a pass-through: adaptation acts
/// BETWEEN calls (resizing the pool, retuning grain), never inside one.
/// What the advice carries is analysis metadata:
///
///  * mark_adapts(knobs)      — names the degrees of parallelism the
///                              controller actuates behind this signature;
///  * mark_spawns_concurrency(confined) — the controller thread runs
///                              concurrently with the woven application
///                              (confined: it never executes the join
///                              point itself, only reads the metrics
///                              plane, so it cannot race on declared
///                              per-instance state);
///  * mark_online_resizable() — the controller's own concurrency
///                              trivially tolerates resize.
///
/// The effects analyzer's adaptation-safety pass joins these marks: every
/// OTHER concurrency-spawning advice on an adapted signature must declare
/// mark_online_resizable(), else resizing mid-flight could orphan or
/// double-run that aspect's work and the composition is rejected with
/// kAdaptationUnsafeResize (see the demo-broken-adapt fixture).
template <class T>
class AdaptationAspect : public aop::Aspect {
 public:
  explicit AdaptationAspect(AdaptationController::Config config = {},
                            std::string name = "Adaptation")
      : Aspect(std::move(name)), controller_(std::move(config)) {}

  /// Declare that the controller adapts the parallelism behind method M,
  /// naming the knobs it actuates there (e.g. {"workers", "grain"}).
  /// Registers outermost pass-through advice carrying the marks above.
  template <auto M>
  AdaptationAspect& adapt_method(std::vector<std::string> knobs) {
    this->template around_method<M>(
            /*order=*/30, aop::Scope::any(),
            [](auto& inv) { return inv.proceed(); })
        .mark_adapts(std::move(knobs))
        .mark_spawns_concurrency(/*confined_to_target=*/true)
        .mark_online_resizable();
    return *this;
  }

  /// The controller, for wiring knobs before plugging.
  [[nodiscard]] AdaptationController& controller() { return controller_; }

  void on_attach(aop::Context&) override { controller_.start(); }
  void on_detach(aop::Context&) override { controller_.stop(); }

 private:
  AdaptationController controller_;
};

}  // namespace apar::adapt
