# Empty compiler generated dependencies file for weaving_micro.
# This may be replaced when dependencies are built.
