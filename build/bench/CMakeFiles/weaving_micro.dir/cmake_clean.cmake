file(REMOVE_RECURSE
  "CMakeFiles/weaving_micro.dir/weaving_micro.cpp.o"
  "CMakeFiles/weaving_micro.dir/weaving_micro.cpp.o.d"
  "weaving_micro"
  "weaving_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weaving_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
