file(REMOVE_RECURSE
  "CMakeFiles/heartbeat_heat.dir/heartbeat_heat.cpp.o"
  "CMakeFiles/heartbeat_heat.dir/heartbeat_heat.cpp.o.d"
  "heartbeat_heat"
  "heartbeat_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbeat_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
