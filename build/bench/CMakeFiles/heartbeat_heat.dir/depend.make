# Empty dependencies file for heartbeat_heat.
# This may be replaced when dependencies are built.
