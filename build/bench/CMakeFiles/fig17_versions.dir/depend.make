# Empty dependencies file for fig17_versions.
# This may be replaced when dependencies are built.
