file(REMOVE_RECURSE
  "CMakeFiles/fig17_versions.dir/fig17_versions.cpp.o"
  "CMakeFiles/fig17_versions.dir/fig17_versions.cpp.o.d"
  "fig17_versions"
  "fig17_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
