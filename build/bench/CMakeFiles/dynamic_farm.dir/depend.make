# Empty dependencies file for dynamic_farm.
# This may be replaced when dependencies are built.
