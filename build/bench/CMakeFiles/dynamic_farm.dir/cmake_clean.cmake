file(REMOVE_RECURSE
  "CMakeFiles/dynamic_farm.dir/dynamic_farm.cpp.o"
  "CMakeFiles/dynamic_farm.dir/dynamic_farm.cpp.o.d"
  "dynamic_farm"
  "dynamic_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
