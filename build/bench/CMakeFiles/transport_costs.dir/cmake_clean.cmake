file(REMOVE_RECURSE
  "CMakeFiles/transport_costs.dir/transport_costs.cpp.o"
  "CMakeFiles/transport_costs.dir/transport_costs.cpp.o.d"
  "transport_costs"
  "transport_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
