# Empty compiler generated dependencies file for transport_costs.
# This may be replaced when dependencies are built.
