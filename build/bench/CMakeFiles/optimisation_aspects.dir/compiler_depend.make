# Empty compiler generated dependencies file for optimisation_aspects.
# This may be replaced when dependencies are built.
