file(REMOVE_RECURSE
  "CMakeFiles/optimisation_aspects.dir/optimisation_aspects.cpp.o"
  "CMakeFiles/optimisation_aspects.dir/optimisation_aspects.cpp.o.d"
  "optimisation_aspects"
  "optimisation_aspects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimisation_aspects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
