
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/prime_sieve.cpp" "examples/CMakeFiles/prime_sieve.dir/prime_sieve.cpp.o" "gcc" "examples/CMakeFiles/prime_sieve.dir/prime_sieve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sieve/CMakeFiles/apar_sieve.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/strategies/CMakeFiles/apar_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/apar_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/aop/CMakeFiles/apar_aop.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/apar_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
