# Empty dependencies file for mandelbrot_farm.
# This may be replaced when dependencies are built.
