file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_farm.dir/mandelbrot_farm.cpp.o"
  "CMakeFiles/mandelbrot_farm.dir/mandelbrot_farm.cpp.o.d"
  "mandelbrot_farm"
  "mandelbrot_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
