# Empty compiler generated dependencies file for heat_heartbeat.
# This may be replaced when dependencies are built.
