file(REMOVE_RECURSE
  "CMakeFiles/heat_heartbeat.dir/heat_heartbeat.cpp.o"
  "CMakeFiles/heat_heartbeat.dir/heat_heartbeat.cpp.o.d"
  "heat_heartbeat"
  "heat_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
