file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_heat_band.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_heat_band.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_mandel_signal.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_mandel_signal.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_word_counter.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_word_counter.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
