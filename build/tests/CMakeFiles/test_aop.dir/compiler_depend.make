# Empty compiler generated dependencies file for test_aop.
# This may be replaced when dependencies are built.
