file(REMOVE_RECURSE
  "CMakeFiles/test_aop.dir/aop/test_advice_chain.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_advice_chain.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_concurrent_weaving.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_concurrent_weaving.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_context.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_context.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_exceptions.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_exceptions.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_pattern.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_pattern.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_scope.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_scope.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_static_weave.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_static_weave.cpp.o.d"
  "CMakeFiles/test_aop.dir/aop/test_trace.cpp.o"
  "CMakeFiles/test_aop.dir/aop/test_trace.cpp.o.d"
  "test_aop"
  "test_aop.pdb"
  "test_aop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
