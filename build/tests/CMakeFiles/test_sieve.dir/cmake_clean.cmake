file(REMOVE_RECURSE
  "CMakeFiles/test_sieve.dir/sieve/test_handcoded.cpp.o"
  "CMakeFiles/test_sieve.dir/sieve/test_handcoded.cpp.o.d"
  "CMakeFiles/test_sieve.dir/sieve/test_prime_filter.cpp.o"
  "CMakeFiles/test_sieve.dir/sieve/test_prime_filter.cpp.o.d"
  "CMakeFiles/test_sieve.dir/sieve/test_sweep.cpp.o"
  "CMakeFiles/test_sieve.dir/sieve/test_sweep.cpp.o.d"
  "CMakeFiles/test_sieve.dir/sieve/test_versions.cpp.o"
  "CMakeFiles/test_sieve.dir/sieve/test_versions.cpp.o.d"
  "test_sieve"
  "test_sieve.pdb"
  "test_sieve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
