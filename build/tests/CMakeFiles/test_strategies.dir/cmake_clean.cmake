file(REMOVE_RECURSE
  "CMakeFiles/test_strategies.dir/strategies/test_concurrency_aspect.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_concurrency_aspect.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_distributed_heartbeat.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_distributed_heartbeat.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_distribution_aspect.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_distribution_aspect.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_divide_conquer.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_divide_conquer.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_dynamic_farm_aspect.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_dynamic_farm_aspect.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_farm_aspect.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_farm_aspect.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_heartbeat_aspect.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_heartbeat_aspect.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_optimisation_aspects.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_optimisation_aspects.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_pipeline_aspect.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_pipeline_aspect.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_resilience.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_resilience.cpp.o.d"
  "CMakeFiles/test_strategies.dir/strategies/test_shape_sweeps.cpp.o"
  "CMakeFiles/test_strategies.dir/strategies/test_shape_sweeps.cpp.o.d"
  "test_strategies"
  "test_strategies.pdb"
  "test_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
