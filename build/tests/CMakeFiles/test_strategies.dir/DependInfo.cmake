
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/strategies/test_concurrency_aspect.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_concurrency_aspect.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_concurrency_aspect.cpp.o.d"
  "/root/repo/tests/strategies/test_distributed_heartbeat.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_distributed_heartbeat.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_distributed_heartbeat.cpp.o.d"
  "/root/repo/tests/strategies/test_distribution_aspect.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_distribution_aspect.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_distribution_aspect.cpp.o.d"
  "/root/repo/tests/strategies/test_divide_conquer.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_divide_conquer.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_divide_conquer.cpp.o.d"
  "/root/repo/tests/strategies/test_dynamic_farm_aspect.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_dynamic_farm_aspect.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_dynamic_farm_aspect.cpp.o.d"
  "/root/repo/tests/strategies/test_farm_aspect.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_farm_aspect.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_farm_aspect.cpp.o.d"
  "/root/repo/tests/strategies/test_heartbeat_aspect.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_heartbeat_aspect.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_heartbeat_aspect.cpp.o.d"
  "/root/repo/tests/strategies/test_optimisation_aspects.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_optimisation_aspects.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_optimisation_aspects.cpp.o.d"
  "/root/repo/tests/strategies/test_pipeline_aspect.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_pipeline_aspect.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_pipeline_aspect.cpp.o.d"
  "/root/repo/tests/strategies/test_resilience.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_resilience.cpp.o.d"
  "/root/repo/tests/strategies/test_shape_sweeps.cpp" "tests/CMakeFiles/test_strategies.dir/strategies/test_shape_sweeps.cpp.o" "gcc" "tests/CMakeFiles/test_strategies.dir/strategies/test_shape_sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sieve/CMakeFiles/apar_sieve.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/strategies/CMakeFiles/apar_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/apar_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/aop/CMakeFiles/apar_aop.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/apar_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
