file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency.dir/concurrency/test_active_object.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_active_object.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/concurrency/test_barrier.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_barrier.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/concurrency/test_future.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_future.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/concurrency/test_sync_registry.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_sync_registry.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/concurrency/test_task_group.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_task_group.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/concurrency/test_thread_pool.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/concurrency/test_work_queue.cpp.o"
  "CMakeFiles/test_concurrency.dir/concurrency/test_work_queue.cpp.o.d"
  "test_concurrency"
  "test_concurrency.pdb"
  "test_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
