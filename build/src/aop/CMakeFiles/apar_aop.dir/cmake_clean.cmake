file(REMOVE_RECURSE
  "CMakeFiles/apar_aop.dir/aspect.cpp.o"
  "CMakeFiles/apar_aop.dir/aspect.cpp.o.d"
  "CMakeFiles/apar_aop.dir/context.cpp.o"
  "CMakeFiles/apar_aop.dir/context.cpp.o.d"
  "CMakeFiles/apar_aop.dir/signature.cpp.o"
  "CMakeFiles/apar_aop.dir/signature.cpp.o.d"
  "CMakeFiles/apar_aop.dir/trace.cpp.o"
  "CMakeFiles/apar_aop.dir/trace.cpp.o.d"
  "libapar_aop.a"
  "libapar_aop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_aop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
