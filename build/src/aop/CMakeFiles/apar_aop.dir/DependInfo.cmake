
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aop/aspect.cpp" "src/aop/CMakeFiles/apar_aop.dir/aspect.cpp.o" "gcc" "src/aop/CMakeFiles/apar_aop.dir/aspect.cpp.o.d"
  "/root/repo/src/aop/context.cpp" "src/aop/CMakeFiles/apar_aop.dir/context.cpp.o" "gcc" "src/aop/CMakeFiles/apar_aop.dir/context.cpp.o.d"
  "/root/repo/src/aop/signature.cpp" "src/aop/CMakeFiles/apar_aop.dir/signature.cpp.o" "gcc" "src/aop/CMakeFiles/apar_aop.dir/signature.cpp.o.d"
  "/root/repo/src/aop/trace.cpp" "src/aop/CMakeFiles/apar_aop.dir/trace.cpp.o" "gcc" "src/aop/CMakeFiles/apar_aop.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/apar_concurrency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
