file(REMOVE_RECURSE
  "libapar_aop.a"
)
