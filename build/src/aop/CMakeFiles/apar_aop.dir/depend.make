# Empty dependencies file for apar_aop.
# This may be replaced when dependencies are built.
