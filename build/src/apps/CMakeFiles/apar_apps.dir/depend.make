# Empty dependencies file for apar_apps.
# This may be replaced when dependencies are built.
