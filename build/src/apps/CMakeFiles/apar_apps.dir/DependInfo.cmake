
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/heat_band.cpp" "src/apps/CMakeFiles/apar_apps.dir/heat_band.cpp.o" "gcc" "src/apps/CMakeFiles/apar_apps.dir/heat_band.cpp.o.d"
  "/root/repo/src/apps/mandel_worker.cpp" "src/apps/CMakeFiles/apar_apps.dir/mandel_worker.cpp.o" "gcc" "src/apps/CMakeFiles/apar_apps.dir/mandel_worker.cpp.o.d"
  "/root/repo/src/apps/signal_stage.cpp" "src/apps/CMakeFiles/apar_apps.dir/signal_stage.cpp.o" "gcc" "src/apps/CMakeFiles/apar_apps.dir/signal_stage.cpp.o.d"
  "/root/repo/src/apps/sort_solver.cpp" "src/apps/CMakeFiles/apar_apps.dir/sort_solver.cpp.o" "gcc" "src/apps/CMakeFiles/apar_apps.dir/sort_solver.cpp.o.d"
  "/root/repo/src/apps/word_counter.cpp" "src/apps/CMakeFiles/apar_apps.dir/word_counter.cpp.o" "gcc" "src/apps/CMakeFiles/apar_apps.dir/word_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strategies/CMakeFiles/apar_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/aop/CMakeFiles/apar_aop.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/apar_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/apar_serial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
