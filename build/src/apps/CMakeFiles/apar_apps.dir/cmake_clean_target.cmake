file(REMOVE_RECURSE
  "libapar_apps.a"
)
