file(REMOVE_RECURSE
  "CMakeFiles/apar_apps.dir/heat_band.cpp.o"
  "CMakeFiles/apar_apps.dir/heat_band.cpp.o.d"
  "CMakeFiles/apar_apps.dir/mandel_worker.cpp.o"
  "CMakeFiles/apar_apps.dir/mandel_worker.cpp.o.d"
  "CMakeFiles/apar_apps.dir/signal_stage.cpp.o"
  "CMakeFiles/apar_apps.dir/signal_stage.cpp.o.d"
  "CMakeFiles/apar_apps.dir/sort_solver.cpp.o"
  "CMakeFiles/apar_apps.dir/sort_solver.cpp.o.d"
  "CMakeFiles/apar_apps.dir/word_counter.cpp.o"
  "CMakeFiles/apar_apps.dir/word_counter.cpp.o.d"
  "libapar_apps.a"
  "libapar_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
