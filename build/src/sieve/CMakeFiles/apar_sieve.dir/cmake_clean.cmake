file(REMOVE_RECURSE
  "CMakeFiles/apar_sieve.dir/handcoded.cpp.o"
  "CMakeFiles/apar_sieve.dir/handcoded.cpp.o.d"
  "CMakeFiles/apar_sieve.dir/prime_filter.cpp.o"
  "CMakeFiles/apar_sieve.dir/prime_filter.cpp.o.d"
  "CMakeFiles/apar_sieve.dir/versions.cpp.o"
  "CMakeFiles/apar_sieve.dir/versions.cpp.o.d"
  "CMakeFiles/apar_sieve.dir/workload.cpp.o"
  "CMakeFiles/apar_sieve.dir/workload.cpp.o.d"
  "libapar_sieve.a"
  "libapar_sieve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
