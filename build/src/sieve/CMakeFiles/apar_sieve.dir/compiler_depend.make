# Empty compiler generated dependencies file for apar_sieve.
# This may be replaced when dependencies are built.
