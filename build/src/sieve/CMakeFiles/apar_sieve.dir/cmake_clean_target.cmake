file(REMOVE_RECURSE
  "libapar_sieve.a"
)
