# Empty compiler generated dependencies file for apar_concurrency.
# This may be replaced when dependencies are built.
