
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concurrency/sync_registry.cpp" "src/concurrency/CMakeFiles/apar_concurrency.dir/sync_registry.cpp.o" "gcc" "src/concurrency/CMakeFiles/apar_concurrency.dir/sync_registry.cpp.o.d"
  "/root/repo/src/concurrency/task_group.cpp" "src/concurrency/CMakeFiles/apar_concurrency.dir/task_group.cpp.o" "gcc" "src/concurrency/CMakeFiles/apar_concurrency.dir/task_group.cpp.o.d"
  "/root/repo/src/concurrency/thread_pool.cpp" "src/concurrency/CMakeFiles/apar_concurrency.dir/thread_pool.cpp.o" "gcc" "src/concurrency/CMakeFiles/apar_concurrency.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
