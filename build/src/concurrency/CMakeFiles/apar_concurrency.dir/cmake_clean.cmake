file(REMOVE_RECURSE
  "CMakeFiles/apar_concurrency.dir/sync_registry.cpp.o"
  "CMakeFiles/apar_concurrency.dir/sync_registry.cpp.o.d"
  "CMakeFiles/apar_concurrency.dir/task_group.cpp.o"
  "CMakeFiles/apar_concurrency.dir/task_group.cpp.o.d"
  "CMakeFiles/apar_concurrency.dir/thread_pool.cpp.o"
  "CMakeFiles/apar_concurrency.dir/thread_pool.cpp.o.d"
  "libapar_concurrency.a"
  "libapar_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
