file(REMOVE_RECURSE
  "libapar_concurrency.a"
)
