file(REMOVE_RECURSE
  "libapar_serial.a"
)
