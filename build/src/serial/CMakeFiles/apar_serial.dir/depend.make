# Empty dependencies file for apar_serial.
# This may be replaced when dependencies are built.
