file(REMOVE_RECURSE
  "CMakeFiles/apar_serial.dir/archive.cpp.o"
  "CMakeFiles/apar_serial.dir/archive.cpp.o.d"
  "libapar_serial.a"
  "libapar_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
