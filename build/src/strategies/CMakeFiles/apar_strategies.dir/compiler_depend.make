# Empty compiler generated dependencies file for apar_strategies.
# This may be replaced when dependencies are built.
