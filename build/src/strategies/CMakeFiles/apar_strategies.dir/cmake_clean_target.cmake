file(REMOVE_RECURSE
  "libapar_strategies.a"
)
