file(REMOVE_RECURSE
  "CMakeFiles/apar_strategies.dir/strategies.cpp.o"
  "CMakeFiles/apar_strategies.dir/strategies.cpp.o.d"
  "libapar_strategies.a"
  "libapar_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
