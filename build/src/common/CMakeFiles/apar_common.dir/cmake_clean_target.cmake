file(REMOVE_RECURSE
  "libapar_common.a"
)
