# Empty compiler generated dependencies file for apar_common.
# This may be replaced when dependencies are built.
