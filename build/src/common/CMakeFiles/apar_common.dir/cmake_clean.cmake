file(REMOVE_RECURSE
  "CMakeFiles/apar_common.dir/config.cpp.o"
  "CMakeFiles/apar_common.dir/config.cpp.o.d"
  "CMakeFiles/apar_common.dir/log.cpp.o"
  "CMakeFiles/apar_common.dir/log.cpp.o.d"
  "CMakeFiles/apar_common.dir/stats.cpp.o"
  "CMakeFiles/apar_common.dir/stats.cpp.o.d"
  "CMakeFiles/apar_common.dir/table.cpp.o"
  "CMakeFiles/apar_common.dir/table.cpp.o.d"
  "libapar_common.a"
  "libapar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
