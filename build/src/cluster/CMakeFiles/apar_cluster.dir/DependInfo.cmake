
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/apar_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/apar_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/middleware.cpp" "src/cluster/CMakeFiles/apar_cluster.dir/middleware.cpp.o" "gcc" "src/cluster/CMakeFiles/apar_cluster.dir/middleware.cpp.o.d"
  "/root/repo/src/cluster/name_server.cpp" "src/cluster/CMakeFiles/apar_cluster.dir/name_server.cpp.o" "gcc" "src/cluster/CMakeFiles/apar_cluster.dir/name_server.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/apar_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/apar_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/rpc.cpp" "src/cluster/CMakeFiles/apar_cluster.dir/rpc.cpp.o" "gcc" "src/cluster/CMakeFiles/apar_cluster.dir/rpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/apar_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/apar_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/aop/CMakeFiles/apar_aop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
