# Empty dependencies file for apar_cluster.
# This may be replaced when dependencies are built.
