file(REMOVE_RECURSE
  "libapar_cluster.a"
)
