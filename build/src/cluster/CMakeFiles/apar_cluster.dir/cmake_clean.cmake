file(REMOVE_RECURSE
  "CMakeFiles/apar_cluster.dir/cluster.cpp.o"
  "CMakeFiles/apar_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/apar_cluster.dir/middleware.cpp.o"
  "CMakeFiles/apar_cluster.dir/middleware.cpp.o.d"
  "CMakeFiles/apar_cluster.dir/name_server.cpp.o"
  "CMakeFiles/apar_cluster.dir/name_server.cpp.o.d"
  "CMakeFiles/apar_cluster.dir/node.cpp.o"
  "CMakeFiles/apar_cluster.dir/node.cpp.o.d"
  "CMakeFiles/apar_cluster.dir/rpc.cpp.o"
  "CMakeFiles/apar_cluster.dir/rpc.cpp.o.d"
  "libapar_cluster.a"
  "libapar_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apar_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
